"""Error hierarchy for GI type inference.

Every failure mode the solver can report is a distinct exception class so
tests (and downstream tools) can assert on the *kind* of rejection, not
just on rejection itself.  All inherit from :class:`GIError`.
"""

from __future__ import annotations


def _safe_str(value) -> str:
    """``str(value)``, but a crash inside ``__str__`` yields a placeholder
    instead of propagating (containment code formats arbitrary objects)."""
    try:
        return str(value)
    except Exception:  # noqa: BLE001 — formatting must never raise
        return f"<unprintable {type(value).__name__}>"


class GIError(Exception):
    """Base class for every error raised by the library."""


class ParseError(GIError):
    """The surface syntax could not be parsed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        location = f" at {line}:{column}" if line is not None else ""
        super().__init__(f"parse error{location}: {message}")


class TypeError_(GIError):
    """Base class for type errors (named with a trailing underscore to
    avoid shadowing the builtin)."""


class UnificationError(TypeError_):
    """Two types could not be made equal."""

    def __init__(self, left, right, reason: str = ""):
        self.left = left
        self.right = right
        detail = f" ({reason})" if reason else ""
        super().__init__(f"cannot unify `{left}` with `{right}`{detail}")


class OccursCheckError(UnificationError):
    """A unification variable occurs inside the type it is equated with
    (the infinite-type check of rule eqsubst)."""

    def __init__(self, variable, type_):
        self.variable = variable
        self.type_ = type_
        TypeError_.__init__(
            self,
            f"occurs check: cannot construct the infinite type "
            f"`{variable} ~ {type_}`",
        )
        self.left = variable
        self.right = type_


class SortError(TypeError_):
    """A unification variable was equated with a type its sort forbids.

    This is how GI rejects un-annotated impredicativity: e.g. a fully
    monomorphic variable (an un-annotated lambda binder) meeting a
    polymorphic type.
    """

    def __init__(self, variable, type_, sort):
        self.variable = variable
        self.type_ = type_
        self.sort = sort
        super().__init__(
            f"sort error: variable `{variable}` of sort `{sort.symbol}` cannot "
            f"stand for `{type_}`, which requires more polymorphism than the "
            f"sort permits (add a type annotation)"
        )


class SkolemEscapeError(TypeError_):
    """A skolem constant introduced by generalisation or a signature leaked
    into an outer scope (the failure case of rule float)."""

    def __init__(self, skolem, type_=None):
        self.skolem = skolem
        self.type_ = type_
        where = f" via `{type_}`" if type_ is not None else ""
        super().__init__(
            f"rigid type variable `{skolem}` would escape its scope{where}"
        )


class StuckConstraintError(TypeError_):
    """The solver reached a fixpoint with residual non-equality constraints
    it could not discharge (an ambiguous/underdetermined program)."""

    def __init__(self, constraints):
        self.constraints = list(constraints)
        rendered = "; ".join(str(constraint) for constraint in self.constraints)
        super().__init__(f"unsolved constraints: {rendered}")


class ScopeError(TypeError_):
    """A term variable or data constructor is not in scope."""

    def __init__(self, name: str):
        self.name = name
        super().__init__(f"variable not in scope: `{name}`")


class AnnotationNeededError(TypeError_):
    """Raised when a construct requires a type annotation (e.g. a lambda
    binder that must be polymorphic — the Lambda Rule of Section 2.3)."""

    def __init__(self, what: str):
        super().__init__(f"type annotation needed: {what}")


class DuplicateBindingError(GIError):
    """A module defines the same top-level name twice (two definitions or
    two signatures).  Carries both source positions so tooling can point at
    the clashing declaration *and* the original."""

    def __init__(
        self,
        name: str,
        kind: str,
        line: int | None = None,
        column: int | None = None,
        first_line: int | None = None,
    ):
        self.name = name
        self.kind = kind  # "binding" or "signature"
        self.line = line
        self.column = column
        self.first_line = first_line
        location = f" at {line}:{column}" if line is not None else ""
        earlier = f" (first {kind} at line {first_line})" if first_line is not None else ""
        super().__init__(
            f"duplicate {kind} for `{name}`{location}{earlier}"
        )


class CyclicBindingError(TypeError_):
    """A recursive binding group contains members without type signatures.

    GI has no implicit generalisation inside recursion (Section 3.5 treats
    ``let`` as monomorphic), so every member of a strongly connected
    binding group must declare its type; the error names the group and the
    members that are missing signatures.
    """

    def __init__(self, group: tuple[str, ...], missing: tuple[str, ...]):
        self.group = tuple(group)
        self.missing = tuple(missing)
        members = ", ".join(f"`{name}`" for name in self.group)
        lacking = ", ".join(f"`{name}`" for name in self.missing)
        shape = "recursive binding" if len(self.group) == 1 else "recursive binding group"
        super().__init__(
            f"{shape} {{{members}}} requires a type signature on every "
            f"member; missing: {lacking}"
        )


class MissingInstanceError(TypeError_):
    """A class constraint could not be discharged from the instance
    environment or the local givens (Appendix B extension)."""

    def __init__(self, constraint):
        self.constraint = constraint
        super().__init__(f"no instance for `{constraint}`")


class BudgetExceededError(GIError):
    """An inference run exhausted one of its resource budgets.

    Carries enough structure for callers to tell *which* limit tripped and
    where: the ``phase`` ("solver", "unify" or "deadline"), the name and
    value of the limit, a snapshot of the run counters, and — when the
    solver was mid-step — the constraint being processed.
    """

    def __init__(
        self,
        phase: str,
        limit_name: str,
        limit,
        counters: dict | None = None,
        constraint=None,
    ):
        self.phase = phase
        self.limit_name = limit_name
        self.limit = limit
        self.counters = dict(counters or {})
        self.constraint = constraint
        used = ", ".join(f"{key}={value}" for key, value in self.counters.items())
        at = f" while processing `{constraint}`" if constraint is not None else ""
        super().__init__(
            f"budget exceeded in {phase}: {limit_name} limit of {limit} "
            f"reached ({used}){at}"
        )


class InternalError(GIError):
    """An internal failure (a bug, not a type error) contained at the
    public API boundary.

    ``Inferencer.infer`` converts any non-:class:`GIError` exception —
    ``RecursionError``, ``AssertionError``, ``KeyError``, … — into this
    class so that no raw Python traceback ever escapes the engine.  The
    original exception is chained as ``__cause__``; ``snapshot`` holds a
    redacted summary of solver state (counts only, no user types), plus
    optionally the formatted original traceback under ``"traceback"`` —
    carried for structured (``--json``) output but never rendered into
    the one-line message.
    """

    def __init__(self, original: BaseException, phase: str, snapshot: dict | None = None):
        self.original_class = type(original).__name__
        self.phase = phase
        self.snapshot = dict(snapshot or {})
        # The original exception (or a snapshot value) may itself refuse
        # to format — a crash inside __str__ must not defeat containment,
        # so every piece of the message is rendered defensively.
        detail = _safe_str(original) or "(no message)"
        if len(detail) > 200:
            detail = detail[:200] + "…"
        rendered = {
            key: _safe_str(value)
            for key, value in self.snapshot.items()
            if key != "traceback"
        }
        state = (
            " [" + ", ".join(f"{key}={value}" for key, value in rendered.items()) + "]"
            if rendered
            else ""
        )
        super().__init__(
            f"internal error during {phase} ({self.original_class}): {detail}{state}"
        )


class ElaborationError(GIError):
    """Internal invariant violation while building the System F witness."""


class SystemFTypeError(GIError):
    """The System F type checker rejected a term."""
