"""The declarative instantiation judgement, as a *checkable* relation.

The declarative system (Figure 4) is not syntax-directed — it guesses a
``∆``-respecting substitution θ in rule InstPoly.  This module provides
the judgement with the guesses made explicit, so it can *verify* them:

    ``σ ⩽s_ω σ1 … σn ; µ``  holds with witness blocks ψ1, ψ2, …

where each ψ lists the types substituted for one quantifier group (the
same shape the solver records as elaboration evidence).  The function
:func:`verify_inference` replays a finished inference run: every
instantiation the solver performed is re-checked against the declarative
rules — InstPoly's sort discipline included — giving an executable bridge
between Section 3 and Section 4 (the content of Theorem 4.2 on the
instantiation side, checked per constraint rather than per derivation).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

from repro.core.classify import Bit, classified_binders
from repro.core.constraints import Constraint, Gen, Inst, Quant
from repro.core.evidence import TakeArg, TypeArgs
from repro.core.infer import InferenceResult
from repro.core.sorts import Sort
from repro.core.types import (
    Forall,
    Type,
    alpha_equal,
    arrow_parts,
    is_arrow,
    respects,
    subst_tvars,
)


@dataclass
class SpecFailure:
    """One place where the algorithm's choice is not derivable."""

    constraint: Inst
    reason: str


@dataclass
class SpecReport:
    """Outcome of replaying a run against the declarative rules."""

    checked: int = 0
    failures: list[SpecFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def check_instantiation(
    sigma: Type,
    sort: Sort,
    bits: Sequence[Bit],
    arg_types: Sequence[Type],
    result: Type,
    witness_blocks: Sequence[Sequence[Type]],
) -> str | None:
    """Does ``σ ⩽s_ω σ̄;µ`` hold with the given InstPoly witnesses?

    Returns ``None`` on success, or a human-readable reason on failure.
    Mirrors rules InstMono / InstArrow / InstPoly exactly:

    * InstPoly: the next witness block instantiates the binders; every
      image must respect the sort the classification ``▷s_ω`` assigns;
    * InstArrow: the type must be an arrow whose domain *equals* the next
      expected argument type (all constructors are invariant);
    * InstMono: with no arguments left, the remainder must equal ``µ``.
    """
    bits = list(bits)
    arg_types = list(arg_types)
    blocks = list(witness_blocks)
    while True:
        if not arg_types and not blocks and alpha_equal(sigma, result):
            # Remainder reached the target (including the ∀-to-the-right
            # case where the target itself is the quantified remainder).
            return None
        if isinstance(sigma, Forall):
            if not blocks:
                return f"missing a witness block for the quantifier in {sigma}"
            block = blocks.pop(0)
            if len(block) != len(sigma.binders):
                return (
                    f"witness block has {len(block)} types for "
                    f"{len(sigma.binders)} binders"
                )
            assignment = classified_binders(sigma, sort, bits)
            for binder, image in zip(sigma.binders, block):
                required = assignment.get(binder, Sort.M)
                if not respects(image, required):
                    return (
                        f"InstPoly: {binder} ↦ {image} does not respect "
                        f"sort `{required.symbol}` (the guardedness "
                        f"classification for this position)"
                    )
            sigma = subst_tvars(dict(zip(sigma.binders, block)), sigma.body)
            continue
        if arg_types:
            if not is_arrow(sigma):
                return f"InstArrow: `{sigma}` is not a function type"
            domain, sigma = arrow_parts(sigma)
            expected = arg_types.pop(0)
            bits.pop(0)
            if not alpha_equal(domain, expected):
                return (
                    f"InstArrow: argument type `{domain}` differs from the "
                    f"expected `{expected}`"
                )
            continue
        if blocks:
            return "unused witness blocks remain"
        if not alpha_equal(sigma, result):
            return f"InstMono: remainder `{sigma}` differs from `{result}`"
        return None


def verify_inference(result: InferenceResult) -> SpecReport:
    """Re-check every instantiation of a finished run against Figure 4.

    Walks the generated constraint tree (including constraints captured
    in generalisation schemes and quantification bodies), zonks each
    instantiation constraint through the final solver substitution, and
    validates it with :func:`check_instantiation` using the recorded
    evidence as the InstPoly witnesses.
    """
    zonk = result.solver.unifier.zonk
    report = SpecReport()

    def witnesses_for(evidence) -> list[list[Type]]:
        if evidence is None:
            return []
        if isinstance(evidence, tuple) and evidence and evidence[0] == "release":
            info = result.evidence.gen_infos.get(evidence[1:])
            if info is None or not info.release_type_args:
                return []
            return [[zonk(t) for t in info.release_type_args]]
        blocks = []
        for event in result.evidence.inst_traces.get(evidence, []):
            if isinstance(event, TypeArgs):
                blocks.append([zonk(t) for t in event.types])
        return blocks

    def visit(constraint: Constraint) -> None:
        if isinstance(constraint, Inst):
            lhs = zonk(constraint.lhs)
            args = [zonk(argument) for argument in constraint.args]
            res = zonk(constraint.result)
            reason = check_instantiation(
                lhs,
                constraint.sort,
                constraint.bits,
                args,
                res,
                witnesses_for(constraint.evidence),
            )
            report.checked += 1
            if reason is not None:
                report.failures.append(SpecFailure(constraint, reason))
        elif isinstance(constraint, Gen):
            for inner in constraint.scheme.constraints:
                visit(inner)
            # The release of the scheme itself is an instantiation
            # ``σ ⩽mϵ ϵ;η``; it was checked by the solver and its witness
            # recorded under the ("release", path) evidence — replay it.
            rhs = zonk(constraint.rhs)
            if not isinstance(rhs, Forall):
                lhs = zonk(constraint.scheme.type_)
                reason = check_instantiation(
                    lhs,
                    Sort.M,
                    (),
                    (),
                    rhs,
                    witnesses_for(
                        ("release",) + tuple(constraint.evidence)
                        if constraint.evidence is not None
                        else None
                    ),
                )
                report.checked += 1
                if reason is not None:
                    report.failures.append(
                        SpecFailure(
                            Inst(lhs, Sort.M, (), (), rhs), reason
                        )
                    )
        elif isinstance(constraint, Quant):
            for wanted in constraint.wanteds:
                visit(wanted)

    for constraint in result.constraints:
        visit(constraint)
    return report
