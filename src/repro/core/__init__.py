"""Core GI type system: syntax, constraints, generation and solving."""

from repro.core.sorts import Sort
from repro.core.types import TVar, TCon, UVar, Forall, Type
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    CaseAlt,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.env import Environment
from repro.core.errors import (
    AnnotationNeededError,
    BudgetExceededError,
    GIError,
    InternalError,
    MissingInstanceError,
    OccursCheckError,
    ScopeError,
    SkolemEscapeError,
    SortError,
    StuckConstraintError,
    TypeError_,
    UnificationError,
)
from repro.core.infer import InferenceResult, InferOptions, Inferencer, infer

__all__ = [
    "Sort",
    "TVar",
    "TCon",
    "UVar",
    "Forall",
    "Type",
    "Term",
    "Var",
    "App",
    "Lam",
    "AnnLam",
    "Ann",
    "Let",
    "Lit",
    "Case",
    "CaseAlt",
    "Environment",
    "GIError",
    "TypeError_",
    "UnificationError",
    "OccursCheckError",
    "SortError",
    "SkolemEscapeError",
    "StuckConstraintError",
    "ScopeError",
    "AnnotationNeededError",
    "MissingInstanceError",
    "BudgetExceededError",
    "InternalError",
    "infer",
    "Inferencer",
    "InferOptions",
    "InferenceResult",
]
