"""Typing environments ``Γ`` and data-constructor signatures."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Mapping

from repro.core.errors import ScopeError
from repro.core.types import Type, ftv, fuv, UVar


@dataclass(frozen=True)
class DataCon:
    """A data constructor ``K : ∀ ā b̄. σ1 -> ... -> σn -> T ā``.

    ``universals`` are the type variables of the result type ``T ā``;
    ``existentials`` (``b̄``) are variables that occur only in the fields
    (Appendix A allows these — they become skolems in each case branch).
    ``fields`` are the argument types and ``result_con`` the constructor
    name ``T``.
    """

    name: str
    universals: tuple[str, ...]
    existentials: tuple[str, ...]
    fields: tuple[Type, ...]
    result_con: str
    # GADT-style local assumptions (Appendix B): each element is either a
    # ``Pred`` (class given) or a pair ``(Type, Type)`` (equality given).
    givens: tuple = ()

    @property
    def arity(self) -> int:
        return len(self.fields)


class Environment:
    """An immutable typing environment mapping term variables to types.

    Environments are persistent: :meth:`extended` returns a new environment
    sharing structure with the old one.  Data constructors live in a
    separate table so ``case`` alternatives can find them.
    """

    def __init__(
        self,
        bindings: Mapping[str, Type] | None = None,
        datacons: Mapping[str, DataCon] | None = None,
    ) -> None:
        self._bindings: dict[str, Type] = dict(bindings or {})
        self._datacons: dict[str, DataCon] = dict(datacons or {})

    def lookup(self, name: str) -> Type:
        """The type of a variable; raises :class:`ScopeError` if absent."""
        try:
            return self._bindings[name]
        except KeyError:
            raise ScopeError(name) from None

    def lookup_datacon(self, name: str) -> DataCon:
        """The signature of a data constructor."""
        try:
            return self._datacons[name]
        except KeyError:
            raise ScopeError(name) from None

    def __contains__(self, name: str) -> bool:
        return name in self._bindings

    def extended(self, name: str, type_: Type) -> "Environment":
        """A new environment with one extra binding."""
        bindings = dict(self._bindings)
        bindings[name] = type_
        return Environment(bindings, self._datacons)

    def extended_many(self, pairs: Mapping[str, Type]) -> "Environment":
        """A new environment with several extra bindings."""
        bindings = dict(self._bindings)
        bindings.update(pairs)
        return Environment(bindings, self._datacons)

    def with_datacon(self, datacon: DataCon) -> "Environment":
        """A new environment with one extra data constructor."""
        datacons = dict(self._datacons)
        datacons[datacon.name] = datacon
        return Environment(self._bindings, datacons)

    def items(self) -> Iterator[tuple[str, Type]]:
        return iter(self._bindings.items())

    def names(self) -> Iterator[str]:
        return iter(self._bindings)

    def free_type_vars(self) -> set[str]:
        """Skolem variables free in any binding."""
        result: set[str] = set()
        for type_ in self._bindings.values():
            result.update(ftv(type_))
        return result

    def free_unification_vars(self) -> set[UVar]:
        """Unification variables free in any binding."""
        result: set[UVar] = set()
        for type_ in self._bindings.values():
            result.update(fuv(type_))
        return result

    def is_closed(self) -> bool:
        """No binding mentions a free skolem or unification variable."""
        return not self.free_type_vars() and not self.free_unification_vars()

    def __len__(self) -> int:
        return len(self._bindings)

    def __repr__(self) -> str:
        inner = ", ".join(f"{name} : {type_}" for name, type_ in self._bindings.items())
        return f"Environment({inner})"
