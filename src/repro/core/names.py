"""Fresh-name supplies for unification variables and skolems."""

from __future__ import annotations

import itertools
from typing import Iterator


class NameSupply:
    """A deterministic supply of fresh names with a common prefix.

    Names look like ``t0``, ``t1``, ... — deterministic so inference runs
    are reproducible and error messages are stable.
    """

    def __init__(self, prefix: str = "t") -> None:
        self._prefix = prefix
        self._counter = itertools.count()

    def fresh(self, hint: str | None = None) -> str:
        """Produce a fresh name, optionally keeping a human-readable hint."""
        index = next(self._counter)
        if hint:
            base = hint.rstrip("0123456789'")
            return f"{base}{index}"
        return f"{self._prefix}{index}"

    def fresh_many(self, count: int, hint: str | None = None) -> list[str]:
        """Produce ``count`` fresh names."""
        return [self.fresh(hint) for _ in range(count)]


def letters() -> Iterator[str]:
    """An endless stream ``a, b, ..., z, a1, b1, ...`` for pretty binders."""
    alphabet = "abcdefghijklmnopqrstuvwxyz"
    for round_index in itertools.count():
        suffix = "" if round_index == 0 else str(round_index)
        for letter in alphabet:
            yield letter + suffix
