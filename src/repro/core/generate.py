"""Constraint generation — the ``Γ ⊢ e : σ ⇝ C`` judgement (Figures 7, 12, 13).

The generator walks the term once, producing a type (usually containing
fresh unification variables) and a conjunction of constraints for the
solver.  Three ancillary judgements from the paper appear as methods:

* :meth:`Generator.gen_fun` — ``⊢fun``: the head of an application;
* :meth:`Generator.gen_arg` — ``⊢arg``: an argument, deciding between
  rule VarGen (bare variable with a closed rank-1 type, bit ``⋆``) and
  rule ArgGen (anything else, bit ``•``);
* :meth:`Generator.gen` — the main judgement.

Two configuration switches support the ablation benchmarks:
``use_vargen`` disables rule VarGen (losing e.g. ``choose [] ids``), and
``nary_apps=False`` types applications one argument at a time, destroying
the guardedness information that multi-argument treatment provides.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.core.classify import Bit
from repro.core.constraints import ClassC, Constraint, Eq, Gen, Inst, Quant, Scheme
from repro.core.env import Environment
from repro.core.errors import GIError
from repro.core.evidence import EvidenceStore, Path
from repro.core.names import NameSupply
from repro.core.policy import DEFAULT_POLICY, InstantiationPolicy
from repro.core.sorts import Sort
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
    subst_type_vars_in_term,
)
from repro.core.types import (
    Forall,
    Pred,
    TCon,
    TVar,
    Type,
    UVar,
    ftv,
    fun,
    fuv,
    is_rank1,
    strip_forall,
    subst_tvars,
)

if TYPE_CHECKING:  # pragma: no cover — avoids a runtime import cycle
    from repro.observability.tracer import TracerLike


@dataclass
class GenOptions:
    """Switches for the generator (ablation support) plus the
    instantiation policy (:mod:`repro.core.policy`)."""

    use_vargen: bool = True
    nary_apps: bool = True
    policy: InstantiationPolicy = DEFAULT_POLICY


class Generator:
    """One constraint-generation run.

    Tracks every unification variable it creates (in creation order) so
    that rule ArgGen can capture "the variables created while processing
    this argument" — which coincides with the paper's
    ``υ' = fuv(ϕ, C) − υ`` because names are globally fresh.
    """

    def __init__(
        self,
        supply: NameSupply | None = None,
        evidence: EvidenceStore | None = None,
        options: GenOptions | None = None,
        tracer: "TracerLike | None" = None,
    ) -> None:
        self.supply = supply or NameSupply("u")
        self.skolem_supply = NameSupply("sk")
        self.evidence = evidence or EvidenceStore()
        self.options = options or GenOptions()
        self.tracer = tracer
        self.created: list[UVar] = []

    def fresh(self, sort: Sort) -> UVar:
        variable = UVar(self.supply.fresh(), sort)
        self.created.append(variable)
        return variable

    def fresh_skolem(self, hint: str) -> str:
        return self.skolem_supply.fresh(hint + "_")

    # ------------------------------------------------------------------
    # Main judgement  Γ ⊢ e : σ ⇝ C
    # ------------------------------------------------------------------

    def gen(self, env: Environment, term: Term, path: Path = ()) -> tuple[Type, list[Constraint]]:
        if isinstance(term, Var):
            # A lone variable is a nullary application (Section 3.1).
            return self.gen_app(env, term, (), path)
        if isinstance(term, Lit):
            return term.type_, []
        if isinstance(term, App):
            return self.gen_app(env, term.head, term.args, path)
        if isinstance(term, Lam):
            binder = self.fresh(Sort.M)
            self.evidence.lam_binders[path] = binder
            body_type, constraints = self.gen(
                env.extended(term.var, binder), term.body, path + (0,)
            )
            return fun(binder, body_type), constraints
        if isinstance(term, AnnLam):
            body_type, constraints = self.gen(
                env.extended(term.var, term.annotation), term.body, path + (0,)
            )
            return fun(term.annotation, body_type), constraints
        if isinstance(term, Ann):
            return self.gen_ann(env, term, path)
        if isinstance(term, Let):
            if (
                self.options.policy.lazy
                and isinstance(term.bound, Var)
                and term.bound.name in env
            ):
                # Lazy instantiation: a let-bound *variable* aliases its
                # environment polytype verbatim instead of being pushed
                # through a nullary instantiation spine.  Since GI does
                # not re-generalise lets (Section 3.5), this is the one
                # site where eager vs lazy is observable — aliasing makes
                # let-inlining of a variable type-preserving.
                bound_type = env.lookup(term.bound.name)
                self.evidence.let_types[path] = bound_type
                body_type, body_constraints = self.gen(
                    env.extended(term.var, bound_type), term.body, path + (1,)
                )
                return body_type, body_constraints
            bound_type, bound_constraints = self.gen(env, term.bound, path + (0,))
            self.evidence.let_types[path] = bound_type
            body_type, body_constraints = self.gen(
                env.extended(term.var, bound_type), term.body, path + (1,)
            )
            return body_type, bound_constraints + body_constraints
        if isinstance(term, Case):
            return self.gen_case(env, term, path)
        raise TypeError(f"unknown term node: {term!r}")

    # ------------------------------------------------------------------
    # Applications (rule App)
    # ------------------------------------------------------------------

    def gen_app(
        self, env: Environment, head: Term, args: tuple[Term, ...], path: Path
    ) -> tuple[Type, list[Constraint]]:
        if not self.options.nary_apps and len(args) > 1:
            return self._gen_app_binary(env, head, args, path)
        head_type, head_constraints = self.gen_fun(env, head, path + (0,))
        expected = tuple(self.fresh(Sort.U) for _ in args)
        result = self.fresh(Sort.T)
        bits: list[Bit] = []
        arg_constraints: list[Constraint] = []
        for index, argument in enumerate(args):
            bit, constraints = self.gen_arg(
                env, argument, expected[index], path + (index + 1,)
            )
            bits.append(bit)
            arg_constraints.extend(constraints)
        inst = Inst(head_type, Sort.M, tuple(bits), expected, result, evidence=path)
        return result, head_constraints + [inst] + arg_constraints

    def _gen_app_binary(
        self, env: Environment, head: Term, args: tuple[Term, ...], path: Path
    ) -> tuple[Type, list[Constraint]]:
        """Ablation mode: type ``e0 e1 ... en`` as ``(...(e0 e1)...) en``.

        Each step sees only one argument, so guardedness can only ever be
        justified by that single argument — the paper's motivation for the
        n-ary treatment.  Evidence is not recorded in this mode.
        """
        current_type, constraints = self.gen_fun(env, head, path + (0,))
        for index, argument in enumerate(args):
            expected = self.fresh(Sort.U)
            result = self.fresh(Sort.T)
            bit, arg_constraints = self.gen_arg(
                env, argument, expected, path + (index + 1,)
            )
            constraints.append(
                Inst(current_type, Sort.M, (bit,), (expected,), result)
            )
            constraints.extend(arg_constraints)
            current_type = result
        return current_type, constraints

    # ------------------------------------------------------------------
    # Heads (⊢fun)
    # ------------------------------------------------------------------

    def gen_fun(self, env: Environment, head: Term, path: Path) -> tuple[Type, list[Constraint]]:
        if isinstance(head, Var):
            # Rule VarHead: the environment type, uninstantiated.
            return env.lookup(head.name), []
        if isinstance(head, App):
            raise GIError("application heads are flattened by construction")
        # Rule ExprHead.
        return self.gen(env, head, path)

    # ------------------------------------------------------------------
    # Arguments (⊢arg): VarGen vs ArgGen
    # ------------------------------------------------------------------

    def gen_arg(
        self, env: Environment, argument: Term, expected: Type, path: Path
    ) -> tuple[Bit, list[Constraint]]:
        tracing = self.tracer is not None and self.tracer.enabled
        if (
            self.options.use_vargen
            and isinstance(argument, Var)
            and argument.name in env
        ):
            var_type = env.lookup(argument.name)
            if self._vargen_applicable(var_type):
                if tracing:
                    self.tracer.inc("gen.args.star")
                    self.tracer.event(
                        "gen.arg",
                        bit=str(Bit.STAR),
                        rule="VarGen",
                        var=argument.name,
                        type=str(var_type),
                    )
                return Bit.STAR, self._vargen(var_type, expected, path)
        # Rule ArgGen: type the argument as an expression and capture
        # every variable created along the way in a generalisation scheme.
        snapshot = len(self.created)
        arg_type, constraints = self.gen(env, argument, path)
        captured = tuple(self.created[snapshot:])
        scheme = Scheme(captured, tuple(constraints), arg_type)
        if tracing:
            self.tracer.inc("gen.args.gen")
            self.tracer.event(
                "gen.arg",
                bit=str(Bit.GEN),
                rule="ArgGen",
                captured=len(captured),
                type=str(arg_type),
            )
        return Bit.GEN, [Gen(scheme, expected, star=False, evidence=path)]

    @staticmethod
    def _vargen_applicable(var_type: Type) -> bool:
        """Rule VarGen needs a *closed* rank-1 type ``∀p̄. τ``."""
        binders, body = strip_forall(var_type)
        if isinstance(var_type, Forall) and var_type.context:
            # Qualified rank-1 types are still fine: the instantiated
            # context becomes wanted constraints in the scheme.
            pass
        return is_rank1(var_type) and not ftv(var_type) and not fuv(var_type)

    def _vargen(self, var_type: Type, expected: Type, path: Path) -> list[Constraint]:
        binders, body = strip_forall(var_type)
        alphas = [self.fresh(Sort.U) for _ in binders]
        mapping = {name: alpha for name, alpha in zip(binders, alphas)}
        instantiated = subst_tvars(mapping, body)
        wanted: list[Constraint] = []
        if isinstance(var_type, Forall):
            for predicate in var_type.context:
                wanted.append(
                    ClassC(
                        predicate.class_name,
                        tuple(subst_tvars(mapping, a) for a in predicate.args),
                    )
                )
        info = self.evidence.gen_info(path)
        info.star = True
        info.star_type_args = list(alphas)
        scheme = Scheme(tuple(alphas), tuple(wanted), instantiated)
        return [Gen(scheme, expected, star=True, evidence=path)]

    # ------------------------------------------------------------------
    # Annotated applications (rule AnnApp)
    # ------------------------------------------------------------------

    def gen_ann(self, env: Environment, term: Ann, path: Path) -> tuple[Type, list[Constraint]]:
        annotation = term.annotation
        binders, body = strip_forall(annotation)
        context = annotation.context if isinstance(annotation, Forall) else ()

        # Rename the annotation's binders to fresh skolems for the inner
        # constraint, so nested annotations with the same binder names do
        # not collide.
        skolems = tuple(self.fresh_skolem(name) for name in binders)
        renaming: dict[str, Type] = {
            name: TVar(skolem) for name, skolem in zip(binders, skolems)
        }
        inner_body = subst_tvars(renaming, body)
        # Lexically scoped type variables: the binders scope over the
        # annotated expression, including its nested annotations.
        scoped_expr = subst_type_vars_in_term(renaming, term.expr)
        if isinstance(scoped_expr, App):
            head, args = scoped_expr.head, scoped_expr.args
        else:
            head, args = scoped_expr, ()
        givens = tuple(
            ClassC(
                predicate.class_name,
                tuple(subst_tvars(renaming, a) for a in predicate.args),
            )
            for predicate in context
        )

        snapshot = len(self.created)
        head_type, head_constraints = self.gen_fun(env, head, path + (0,))
        expected = tuple(self.fresh(Sort.U) for _ in args)
        bits: list[Bit] = []
        arg_constraints: list[Constraint] = []
        for index, argument in enumerate(args):
            bit, constraints = self.gen_arg(
                env, argument, expected[index], path + (index + 1,)
            )
            bits.append(bit)
            arg_constraints.extend(constraints)
        inst = Inst(head_type, Sort.U, tuple(bits), expected, inner_body, evidence=path)
        existentials = tuple(self.created[snapshot:])
        wanteds = tuple(head_constraints + [inst] + arg_constraints)
        quant = Quant(skolems, existentials, givens, wanteds, evidence=path)
        info = self.evidence.gen_info(("ann",) + path)
        info.skolems = list(skolems)
        return annotation, [quant]

    # ------------------------------------------------------------------
    # Case expressions (Figure 12 / Figure 13)
    # ------------------------------------------------------------------

    def gen_case(self, env: Environment, term: Case, path: Path) -> tuple[Type, list[Constraint]]:
        scrutinee_type, constraints = self.gen(env, term.scrutinee, path + (0,))
        first = env.lookup_datacon(term.alts[0].constructor)
        tycon = first.result_con
        alphas = tuple(self.fresh(Sort.U) for _ in first.universals)
        case_info = self.evidence.case_info(path)
        case_info.tycon_args = list(alphas)
        result = self.fresh(Sort.U)
        constraints.append(
            Inst(scrutinee_type, Sort.M, (), (), TCon(tycon, alphas))
        )
        for index, alt in enumerate(term.alts, start=1):
            datacon = env.lookup_datacon(alt.constructor)
            if datacon.result_con != tycon:
                raise GIError(
                    f"constructor {alt.constructor} belongs to {datacon.result_con}, "
                    f"not {tycon}"
                )
            if len(alt.binders) != datacon.arity:
                raise GIError(
                    f"constructor {alt.constructor} has arity {datacon.arity}, "
                    f"pattern binds {len(alt.binders)}"
                )
            if len(datacon.universals) != len(alphas):
                raise GIError(
                    f"constructor {alt.constructor} disagrees on the arity of {tycon}"
                )
            mapping: dict[str, Type] = dict(zip(datacon.universals, alphas))
            skolems = tuple(self.fresh_skolem(name) for name in datacon.existentials)
            mapping.update(
                {name: TVar(skolem) for name, skolem in zip(datacon.existentials, skolems)}
            )
            field_types = [subst_tvars(mapping, field) for field in datacon.fields]
            case_info.alt_skolems.append(list(skolems))
            case_info.field_types.append(list(field_types))
            branch_env = env.extended_many(dict(zip(alt.binders, field_types)))
            givens = tuple(
                _subst_given(mapping, given) for given in datacon.givens
            )
            snapshot = len(self.created)
            rhs_type, rhs_constraints = self.gen(branch_env, alt.rhs, path + (index,))
            branch_wanteds = tuple(rhs_constraints + [Eq(result, rhs_type)])
            if skolems or givens:
                existentials = tuple(self.created[snapshot:])
                constraints.append(Quant(skolems, existentials, givens, branch_wanteds))
            else:
                constraints.extend(branch_wanteds)
        return result, constraints


def _subst_given(mapping: dict[str, Type], given) -> Constraint:
    """Instantiate a data constructor's stored given constraint."""
    if isinstance(given, Pred):
        return ClassC(
            given.class_name,
            tuple(subst_tvars(mapping, argument) for argument in given.args),
        )
    if isinstance(given, tuple) and len(given) == 2:
        left, right = given
        return Eq(subst_tvars(mapping, left), subst_tvars(mapping, right))
    raise TypeError(f"unsupported given constraint on data constructor: {given!r}")
