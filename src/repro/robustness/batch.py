"""Batch checking: many expressions, one budget each, never crash.

The driver behind ``python -m repro batch``.  Each expression is parsed
and inferred in isolation — under its own (re-armed) budget, behind the
crash-containment boundary — and failures become structured
:class:`Diagnostic` records instead of aborting the run.  The first bad
expression in a batch therefore costs exactly one diagnostic, never the
rest of the batch.
"""

from __future__ import annotations

import random
from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import Iterable

from repro.core.env import Environment
from repro.core.errors import BudgetExceededError, GIError, InternalError, ParseError
from repro.core.infer import Inferencer, InferOptions
from repro.core.solver import InstanceEnv
from repro.robustness.budget import Budget
from repro.robustness.faultinject import FaultPlan
from repro.syntax.parser import parse_term

SEVERITY_ERROR = "error"
"""A well-delimited rejection: parse error, type error, budget exhausted."""

SEVERITY_INTERNAL = "internal"
"""A contained engine failure (:class:`InternalError` or a parser crash)."""


class BatchSource(str):
    """A batch expression that may carry its own instantiation policy.

    A plain ``str`` for every existing purpose (equality, rendering,
    parsing), plus an optional per-item policy override.  Corpus files
    whose verdict depends on a non-default policy (the tc211 policy-flip
    cases) declare it with a ``-- policy: NAME`` header, which
    :func:`read_batch_file` attaches here so ``repro batch tests/corpus``
    replays them under the policy they were filed against.
    """

    policy = None

    def __new__(cls, source: str, policy=None):
        self = super().__new__(cls, source)
        self.policy = policy
        return self


@dataclass
class Diagnostic:
    """One structured failure record for one batch item."""

    severity: str
    """``"error"`` or ``"internal"`` (see module constants)."""

    index: int
    """Zero-based position of the expression in the batch."""

    error_class: str
    """Name of the :class:`GIError` subclass that was raised."""

    message: str

    phase: str | None = None
    """Engine phase for budget/internal failures, when known."""

    binding: str | None = None
    """For module checking: the name of the top-level binding at fault."""

    traceback: str | None = None
    """For contained internal failures: the formatted original traceback
    (from the :class:`~repro.core.errors.InternalError` snapshot), so
    ``--json`` consumers see where a crash came from.  Never rendered
    into the one-line text report."""

    seed: int | None = None
    """For ``--seed`` fault-injection sweeps: the sweep seed that
    produced this run's fault plan, for exact reproduction."""

    def to_dict(self) -> dict:
        return {
            "severity": self.severity,
            "index": self.index,
            "error_class": self.error_class,
            "message": self.message,
            "phase": self.phase,
            "binding": self.binding,
            "traceback": self.traceback,
            "seed": self.seed,
        }


@dataclass
class BatchItem:
    """The outcome for one expression: a type or a diagnostic."""

    index: int
    source: str
    type_: str | None = None
    diagnostic: Diagnostic | None = None

    solver_steps: int | None = None
    """Solver steps the successful run took — the scheduling-cost signal
    the core benchmarks compare across ``--jobs`` settings (``None`` when
    inference never reached the solver)."""

    @property
    def ok(self) -> bool:
        return self.diagnostic is None

    def to_dict(self) -> dict:
        return {
            "index": self.index,
            "source": self.source,
            "ok": self.ok,
            "type": self.type_,
            "solver_steps": self.solver_steps,
            "diagnostic": self.diagnostic.to_dict() if self.diagnostic else None,
        }


@dataclass
class BatchResult:
    """All outcomes of one batch run, in input order."""

    items: list[BatchItem] = field(default_factory=list)

    interrupted: bool = False
    """True when the run was cancelled (SIGINT/SIGTERM under the CLI)
    before every source was checked — ``items`` then holds the results
    completed before the interrupt, still in input order."""

    @property
    def ok(self) -> bool:
        return all(item.ok for item in self.items) and not self.interrupted

    @property
    def failures(self) -> list[BatchItem]:
        return [item for item in self.items if not item.ok]

    @property
    def diagnostics(self) -> list[Diagnostic]:
        return [item.diagnostic for item in self.items if item.diagnostic]

    def to_dict(self) -> dict:
        return {
            "total": len(self.items),
            "passed": len(self.items) - len(self.failures),
            "failed": len(self.failures),
            "interrupted": self.interrupted,
            "items": [item.to_dict() for item in self.items],
        }


def seeded_fault_plan(seed: int, index: int) -> FaultPlan:
    """The deterministic fault plan for batch item ``index`` of sweep
    ``seed``.

    Each item gets its own trigger, derived from ``f"{seed}:{index}"`` so
    the same seed reproduces the same plan per item regardless of batch
    size or ordering: roughly half the items are armed to fail at a
    solver step (1–64), the other half at a unification depth (1–16).
    """
    rng = random.Random(f"{seed}:{index}")
    if rng.random() < 0.5:
        return FaultPlan(fail_at_solver_step=rng.randint(1, 64))
    return FaultPlan(fail_at_unify_depth=rng.randint(1, 16))


def check_batch(
    sources: Iterable[str],
    env: Environment | None = None,
    instances: InstanceEnv | None = None,
    options: InferOptions | None = None,
    budget: Budget | None = None,
    faults: FaultPlan | None = None,
    jobs: int = 1,
    seed: int | None = None,
    tracer=None,
    cancel=None,
) -> BatchResult:
    """Type-check every expression, isolating each under its own budget.

    Within one worker, the same :class:`Budget` object is re-armed
    (:meth:`Budget.start`) for every item, so a budget-busting expression
    cannot starve its neighbours.  Every failure mode — parse error, type
    error, exhausted budget, contained internal crash — yields one
    :class:`Diagnostic`; nothing stops the batch.

    ``jobs > 1`` checks expressions concurrently through the shared
    :class:`~repro.robustness.pool.WorkerPool` (the same pool the module
    engine uses), each worker under its own cloned budget; results keep
    input order.  Deterministic fault injection is inherently serial
    (a :class:`FaultPlan` counts engine events in order), so a plan
    forces ``jobs=1`` — as does ``seed``, which arms a *per-item* plan
    from :func:`seeded_fault_plan` for reproducible fault sweeps and
    stamps the seed into every resulting diagnostic.

    ``cancel`` (a :class:`threading.Event`, or anything with ``is_set``)
    makes the run interruptible: it is polled before each item — in every
    worker too — and once set, remaining items are dropped and the result
    comes back with ``interrupted=True`` holding the completed prefix.
    This is how the CLI drains the pool on SIGINT/SIGTERM instead of
    orphaning workers mid-batch.

    A source that is a :class:`BatchSource` with a non-``None`` policy is
    checked under ``options`` with that policy substituted — the per-item
    override beats the batch-wide default, so one corpus file filed
    against ``lazy-shallow`` replays correctly inside an otherwise
    default sweep.
    """
    from repro.robustness.pool import WorkerPool, clone_budget

    sources = list(sources)
    tracing = tracer is not None and tracer.enabled
    batch_cm = (
        tracer.span("batch", items=len(sources), jobs=jobs)
        if tracing
        else nullcontext()
    )
    with batch_cm as batch_span:
        if faults is not None or seed is not None:
            jobs = 1
        if jobs <= 1:
            shared = (
                None
                if seed is not None
                else Inferencer(
                    env, instances, options, budget=budget, faults=faults, tracer=tracer
                )
            )
            result = BatchResult()
            for index, source in enumerate(sources):
                if cancel is not None and cancel.is_set():
                    result.interrupted = True
                    break
                item_options = _options_for_item(options, source)
                if item_options is not options:
                    inferencer = Inferencer(
                        env,
                        instances,
                        item_options,
                        budget=budget,
                        faults=None if seed is None else seeded_fault_plan(seed, index),
                        tracer=tracer,
                    )
                else:
                    inferencer = shared or Inferencer(
                        env,
                        instances,
                        options,
                        budget=budget,
                        faults=seeded_fault_plan(seed, index),
                        tracer=tracer,
                    )
                item_cm = (
                    tracer.span("batch.item", parent=batch_span, index=index)
                    if tracing
                    else nullcontext()
                )
                with item_cm:
                    result.items.append(_check_one(inferencer, index, source, seed))
            return result

        pool = WorkerPool(jobs=jobs, budget_factory=lambda: clone_budget(budget))

        # Arena mode: intern the prelude once in the parent, snapshot it
        # into one contiguous buffer, and let every worker restore a
        # private copy at startup — the environment's types arrive in
        # each worker pre-interned (canonical ids, no re-hashing of
        # object graphs) and per-worker tables never contend.
        from repro.core.arena_unify import arena_enabled

        prelude_snapshot = None
        if env is not None and arena_enabled(
            options.arena if options is not None else None
        ):
            from repro.core.arena import snapshot_environment

            prelude_snapshot = snapshot_environment(env)
        import threading

        worker_state = threading.local()

        def _worker_intern():
            if prelude_snapshot is None:
                return None
            table = getattr(worker_state, "intern", None)
            if table is None:
                from repro.core.arena import ArenaInternTable

                table = ArenaInternTable.restore(prelude_snapshot)
                worker_state.intern = table
            return table

        def run(
            indexed: tuple[int, str], worker_budget: Budget | None
        ) -> BatchItem | None:
            index, source = indexed
            if cancel is not None and cancel.is_set():
                return None  # drained: the item never started
            worker = Inferencer(
                env,
                instances,
                _options_for_item(options, source),
                budget=worker_budget,
                tracer=tracer,
                intern=_worker_intern(),
            )
            item_cm = (
                tracer.span("batch.item", parent=batch_span, index=index)
                if tracing
                else nullcontext()
            )
            with item_cm:
                return _check_one(worker, index, source)

        result = BatchResult()
        outcomes = pool.map(run, list(enumerate(sources)))
        result.items.extend(item for item in outcomes if item is not None)
        result.interrupted = any(item is None for item in outcomes)
        return result


def _options_for_item(
    options: InferOptions | None, source: str
) -> InferOptions | None:
    """``options`` with a :class:`BatchSource` policy override applied."""
    policy = getattr(source, "policy", None)
    if policy is None:
        return options
    from dataclasses import replace

    return replace(options if options is not None else InferOptions(), policy=policy)


def _check_one(
    inferencer: Inferencer, index: int, source: str, seed: int | None = None
) -> BatchItem:
    item = BatchItem(index=index, source=source)
    try:
        term = _parse_contained(source)
        result = inferencer.infer(term)
        item.type_ = str(result.type_)
        item.solver_steps = result.solver.steps
    except GIError as error:
        severity = SEVERITY_INTERNAL if isinstance(error, InternalError) else SEVERITY_ERROR
        phase = getattr(error, "phase", None)
        item.diagnostic = Diagnostic(
            severity=severity,
            index=index,
            error_class=type(error).__name__,
            message=str(error),
            phase=phase,
            traceback=getattr(error, "snapshot", {}).get("traceback"),
            seed=seed,
        )
    return item


def _parse_contained(source: str):
    """Parse, converting parser crashes (not parse errors) to GI errors.

    ``Inferencer.infer`` contains internal failures of the *engine*, but
    the parser runs before it; a pathological input that blows the
    parser's recursion must still come out as a diagnostic.
    """
    try:
        return parse_term(source)
    except GIError:
        raise
    except (RecursionError, Exception) as error:  # noqa: BLE001 — containment
        raise InternalError(error, phase="parse") from error


def read_batch_file(path: str) -> list[str]:
    """Read a batch file — or a directory of ``.gi`` files — into sources.

    Blank lines and ``--`` comment lines are skipped; there is no
    multi-line expression syntax.  A directory is read as every ``*.gi``
    file under it, sorted by name — the format the conformance fuzzer's
    counterexample corpus uses, so minimized counterexamples flow
    through the same diagnostics/JSON pipeline as any batch input.

    One comment header is load-bearing: ``-- policy: NAME`` selects the
    instantiation policy for every expression after it *in that file*
    (scope resets per file), returned as :class:`BatchSource` strings so
    :func:`check_batch` replays policy-flip corpus entries under the
    policy they were filed against.  An unknown name raises
    :class:`ValueError` naming the file.
    """
    from pathlib import Path

    target = Path(path)
    if target.is_dir():
        sources: list[str] = []
        for entry in sorted(target.glob("*.gi")):
            sources.extend(read_batch_file(str(entry)))
        return sources
    sources = []
    policy = None
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            stripped = line.strip()
            if not stripped:
                continue
            if stripped.startswith("--"):
                body = stripped[2:].strip()
                key, _, value = body.partition(":")
                if key.strip() == "policy":
                    from repro.core.policy import parse_policy

                    try:
                        policy = parse_policy(value.strip())
                    except ValueError as error:
                        raise ValueError(f"{path}: {error}") from None
                continue
            sources.append(
                BatchSource(stripped, policy=policy) if policy is not None else stripped
            )
    return sources


def render_text(result: BatchResult) -> str:
    """The human-readable report printed by the CLI."""
    lines: list[str] = []
    for item in result.items:
        if item.ok:
            lines.append(f"#{item.index}: ok: {item.type_}")
        else:
            diagnostic = item.diagnostic
            lines.append(
                f"#{item.index}: {diagnostic.severity}"
                f" [{diagnostic.error_class}]: {diagnostic.message}"
            )
    total = len(result.items)
    failed = len(result.failures)
    tail = " (interrupted — partial results)" if result.interrupted else ""
    lines.append(f"{total - failed}/{total} passed, {failed} failed{tail}")
    return "\n".join(lines)
