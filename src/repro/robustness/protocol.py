"""The versioned JSONL wire protocol of the ``repro serve`` daemon.

One JSON object per line in both directions.  Every message carries
``{"v": 1}``; requests carry an ``id`` (echoed verbatim in the response
so clients may pipeline) and an ``op``::

    {"v":1,"id":1,"op":"infer","expr":"head ids","timeout_ms":2000}
    {"v":1,"id":1,"ok":true,"op":"infer","type":"forall p a. p a a -> a","ms":1.4}

Operations
==========

=============  =====================================================
``check``       ``expr`` + ``signature`` — check against a signature
``infer``       ``expr`` — principal type
``module``      ``source`` *or* ``path`` — check a module into the
                session (bindings stay visible to later requests)
``explain``     ``expr`` — infer + the derivation narrative
``stats``       server/queue/session statistics
``shutdown``    begin a graceful drain
=============  =====================================================

Optional request fields: ``session`` (a name — requests sharing it share
an env/cache namespace across connections; default is a per-connection
session), ``timeout_ms`` (clamped by the server ceiling; the deadline is
fixed at *admission*, so queue wait counts against it), ``max_steps`` /
``max_depth`` (solver/unifier budgets, clamped likewise), ``policy``
(an instantiation-policy name — ``eager-shallow``, ``eager-deep``,
``lazy-shallow``, ``lazy-deep`` — applied to that one request; the
default is the paper's eager-shallow discipline), and — only
when the server runs with ``--allow-faults`` — ``fault_step`` /
``fault_depth`` arming a deterministic :class:`FaultPlan` for that one
request (the crash-containment soak's entry point).

Failure responses carry ``ok: false`` plus a structured ``error`` object
``{class, severity, message, phase?}``.  ``severity`` partitions every
possible failure:

* ``"error"`` — a well-delimited rejection (parse/type error, exhausted
  budget, a malformed request);
* ``"internal"`` — a contained engine crash (the server survives; the
  response may carry the remote traceback);
* ``"overloaded"`` — load was shed before admission; the response also
  carries a top-level ``retry_after_ms`` hint;
* ``"unavailable"`` — the server is draining and accepts no new work.

On connect the server sends one hello line
(``{"v":1,"event":"hello","proto":1,"session":...}``) announcing the
protocol version and the connection's default session name.

:func:`validate_request` and :func:`validate_response` are the single
source of truth for the schema — the server, the test suite, the load
generator and the CI smoke job all call them.
"""

from __future__ import annotations

import json

from repro.core.policy import POLICY_NAMES

PROTO_VERSION = 1

OPS = ("check", "infer", "module", "explain", "stats", "shutdown")

SEVERITY_ERROR = "error"
SEVERITY_INTERNAL = "internal"
SEVERITY_OVERLOADED = "overloaded"
SEVERITY_UNAVAILABLE = "unavailable"
SEVERITIES = (
    SEVERITY_ERROR,
    SEVERITY_INTERNAL,
    SEVERITY_OVERLOADED,
    SEVERITY_UNAVAILABLE,
)

MAX_LINE_BYTES = 1_000_000
"""Default per-line ceiling; longer requests are shed with a typed
``PayloadTooLarge`` error instead of buffering without bound."""

_NUMBER = (int, float)
_ID_TYPES = (int, str)

_FIELD_TYPES: dict[str, tuple] = {
    "expr": (str,),
    "signature": (str,),
    "source": (str,),
    "path": (str,),
    "session": (str,),
    "timeout_ms": _NUMBER,
    "max_steps": (int,),
    "max_depth": (int,),
    "fault_step": (int,),
    "fault_depth": (int,),
    "stats": (bool,),
    "policy": (str,),
}

_OP_REQUIRED: dict[str, tuple[str, ...]] = {
    "check": ("expr", "signature"),
    "infer": ("expr",),
    "module": (),  # source xor path, checked specially
    "explain": ("expr",),
    "stats": (),
    "shutdown": (),
}

_OP_OPTIONAL: dict[str, tuple[str, ...]] = {
    "check": (
        "timeout_ms",
        "max_steps",
        "max_depth",
        "fault_step",
        "fault_depth",
        "policy",
    ),
    "infer": (
        "timeout_ms",
        "max_steps",
        "max_depth",
        "fault_step",
        "fault_depth",
        "policy",
    ),
    "module": (
        "source",
        "path",
        "stats",
        "timeout_ms",
        "max_steps",
        "max_depth",
        "policy",
    ),
    "explain": ("timeout_ms", "max_steps", "max_depth", "policy"),
    "stats": (),
    "shutdown": (),
}


def validate_request(obj) -> list[str]:
    """Schema errors for one parsed request; an empty list means valid."""
    if not isinstance(obj, dict):
        return [f"request must be a JSON object, got {type(obj).__name__}"]
    errors: list[str] = []
    version = obj.get("v")
    if not isinstance(version, int) or isinstance(version, bool):
        errors.append("missing or non-integer field `v`")
    elif version != PROTO_VERSION:
        errors.append(f"unsupported protocol version {version!r}")
    if "id" not in obj:
        errors.append("missing required field `id`")
    elif not isinstance(obj["id"], _ID_TYPES) or isinstance(obj["id"], bool):
        errors.append(f"field `id` must be int or str, got {type(obj['id']).__name__}")
    op = obj.get("op")
    if not isinstance(op, str):
        errors.append("missing or non-string field `op`")
        return errors
    if op not in OPS:
        errors.append(f"unknown op `{op}` (known: {', '.join(OPS)})")
        return errors
    for name in _OP_REQUIRED[op]:
        if name not in obj:
            errors.append(f"{op}: missing required field `{name}`")
    if op == "module" and ("source" in obj) == ("path" in obj):
        errors.append("module: exactly one of `source` / `path` is required")
    allowed = {"v", "id", "op", "session"}
    allowed.update(_OP_REQUIRED[op])
    allowed.update(_OP_OPTIONAL[op])
    for name, value in obj.items():
        if name not in allowed:
            errors.append(f"{op}: unexpected field `{name}`")
            continue
        expected = _FIELD_TYPES.get(name)
        if expected is not None and (
            not isinstance(value, expected)
            or (isinstance(value, bool) and bool not in expected)
        ):
            errors.append(f"{op}: field `{name}` has wrong type {type(value).__name__}")
    for name in ("timeout_ms", "max_steps", "max_depth", "fault_step", "fault_depth"):
        value = obj.get(name)
        if isinstance(value, _NUMBER) and not isinstance(value, bool) and value <= 0:
            errors.append(f"{op}: field `{name}` must be positive")
    policy = obj.get("policy")
    if isinstance(policy, str) and policy not in POLICY_NAMES:
        errors.append(
            f"{op}: unknown policy `{policy}` "
            f"(available: {', '.join(POLICY_NAMES)})"
        )
    return errors


def validate_response(obj) -> list[str]:
    """Schema errors for one parsed response; an empty list means valid."""
    if not isinstance(obj, dict):
        return [f"response must be a JSON object, got {type(obj).__name__}"]
    errors: list[str] = []
    version = obj.get("v")
    if version != PROTO_VERSION or isinstance(version, bool):
        errors.append(f"missing or unsupported field `v` ({version!r})")
    if "id" not in obj:
        errors.append("missing required field `id`")
    elif obj["id"] is not None and (
        not isinstance(obj["id"], _ID_TYPES) or isinstance(obj["id"], bool)
    ):
        errors.append("field `id` must be int, str or null")
    ok = obj.get("ok")
    if not isinstance(ok, bool):
        errors.append("missing or non-boolean field `ok`")
        return errors
    if ok:
        if "error" in obj:
            errors.append("`ok` response must not carry `error`")
        return errors
    error = obj.get("error")
    if not isinstance(error, dict):
        errors.append("failure response must carry an `error` object")
        return errors
    for name in ("class", "message", "severity"):
        if not isinstance(error.get(name), str):
            errors.append(f"error object: missing or non-string `{name}`")
    severity = error.get("severity")
    if isinstance(severity, str) and severity not in SEVERITIES:
        errors.append(f"error object: unknown severity `{severity}`")
    if severity == SEVERITY_OVERLOADED:
        retry = obj.get("retry_after_ms")
        if not isinstance(retry, int) or isinstance(retry, bool) or retry < 0:
            errors.append("overloaded response must carry integer `retry_after_ms`")
    return errors


def validate_response_line(line: str) -> list[str]:
    """Schema errors for one raw response line (parse errors included)."""
    try:
        obj = json.loads(line)
    except json.JSONDecodeError as error:
        return [f"not valid JSON: {error}"]
    if isinstance(obj, dict) and obj.get("event") == "hello":
        return validate_hello(obj)
    return validate_response(obj)


def validate_hello(obj) -> list[str]:
    """Schema errors for the per-connection hello line."""
    errors: list[str] = []
    if obj.get("v") != PROTO_VERSION:
        errors.append("hello: missing or unsupported `v`")
    if obj.get("event") != "hello":
        errors.append("hello: `event` must be \"hello\"")
    if obj.get("proto") != PROTO_VERSION:
        errors.append("hello: missing or unsupported `proto`")
    if not isinstance(obj.get("session"), str):
        errors.append("hello: missing or non-string `session`")
    return errors


# ----------------------------------------------------------------------
# Response builders (the server uses these; tests assert through the
# validators above, so builders and validators cannot drift apart).
# ----------------------------------------------------------------------


def ok_response(request_id, op: str, **payload) -> dict:
    response = {"v": PROTO_VERSION, "id": request_id, "ok": True, "op": op}
    response.update(payload)
    return response


def error_response(
    request_id,
    error_class: str,
    message: str,
    severity: str = SEVERITY_ERROR,
    op: str | None = None,
    phase: str | None = None,
    **extra,
) -> dict:
    error: dict = {"class": error_class, "severity": severity, "message": message}
    if phase is not None:
        error["phase"] = phase
    response: dict = {"v": PROTO_VERSION, "id": request_id, "ok": False, "error": error}
    if op is not None:
        response["op"] = op
    response.update(extra)
    return response


def hello(session: str, **extra) -> dict:
    payload = {
        "v": PROTO_VERSION,
        "event": "hello",
        "proto": PROTO_VERSION,
        "server": "repro-serve",
        "session": session,
    }
    payload.update(extra)
    return payload


def encode(message: dict) -> bytes:
    """One wire line for ``message`` (compact JSON + newline)."""
    return (json.dumps(message, separators=(",", ":")) + "\n").encode("utf-8")
