"""A small synchronous client for the ``repro serve`` daemon.

Used by the test suite, the load generator and the CI smoke job; it is
deliberately minimal — one socket, blocking request/response — because
the interesting concurrency lives server-side::

    with ServeClient(socket_path="/tmp/gi.sock") as client:
        reply = client.request("infer", expr="head ids")
        assert reply["ok"] and reply["type"].startswith("forall")

:meth:`ServeClient.connect` retries for ``retry_for`` seconds, so a
caller that just forked the daemon can connect without a sleep-loop of
its own.  Every response read off the wire is schema-checked with
:func:`repro.robustness.protocol.validate_response`; a malformed line
raises :class:`ProtocolViolation` — this is how the soak test asserts
"every response schema-valid" without a second validation pass.
"""

from __future__ import annotations

import json
import socket
import time

from repro.robustness import protocol


class ProtocolViolation(AssertionError):
    """The server sent a line that fails the response schema."""


class ServeClient:
    """One connection to a serve daemon (Unix socket or TCP)."""

    def __init__(
        self,
        socket_path: str | None = None,
        host: str = "127.0.0.1",
        port: int | None = None,
        timeout: float = 30.0,
        validate: bool = True,
    ) -> None:
        if (socket_path is None) == (port is None):
            raise ValueError("exactly one of socket_path / port is required")
        self.socket_path = socket_path
        self.host = host
        self.port = port
        self.timeout = timeout
        self.validate = validate
        self.hello: dict | None = None
        self.session: str | None = None
        self._sock: socket.socket | None = None
        self._reader = None
        self._next_id = 0
        self._mailbox: dict = {}
        """Responses read while waiting for a different id — kept so
        pipelined requests can be awaited in any order."""

    # ------------------------------------------------------------------

    def connect(self, retry_for: float = 5.0) -> dict:
        """Connect (retrying while the daemon boots) and read the hello."""
        deadline = time.monotonic() + retry_for
        while True:
            try:
                if self.socket_path is not None:
                    sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
                    sock.settimeout(self.timeout)
                    sock.connect(self.socket_path)
                else:
                    sock = socket.create_connection(
                        (self.host, self.port), timeout=self.timeout
                    )
                break
            except OSError:
                if time.monotonic() >= deadline:
                    raise
                time.sleep(0.05)
        self._sock = sock
        self._mailbox.clear()
        self._reader = sock.makefile("r", encoding="utf-8", newline="\n")
        self.hello = self._read_message()
        if self.hello is None:
            raise ConnectionError("server closed the connection before hello")
        if self.validate:
            problems = protocol.validate_hello(self.hello)
            if problems:
                raise ProtocolViolation(f"bad hello: {'; '.join(problems)}")
        self.session = self.hello.get("session")
        return self.hello

    def close(self) -> None:
        if self._reader is not None:
            try:
                self._reader.close()
            except OSError:
                pass
            self._reader = None
        if self._sock is not None:
            try:
                self._sock.close()
            except OSError:
                pass
            self._sock = None

    def __enter__(self) -> "ServeClient":
        if self._sock is None:
            self.connect()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------

    def request(self, op: str, **fields) -> dict:
        """Send one request and block for its response (matched by id)."""
        request_id = self.send(op, **fields)
        return self.wait_for(request_id)

    def send(self, op: str, **fields) -> int:
        """Send a request without waiting; returns its id (pipelining)."""
        self._next_id += 1
        request = {"v": protocol.PROTO_VERSION, "id": self._next_id, "op": op}
        request.update(fields)
        self.send_raw(json.dumps(request, separators=(",", ":")) + "\n")
        return self._next_id

    def send_raw(self, text: str) -> None:
        """Send raw bytes — the adversarial paths (oversized payloads,
        malformed JSON, half-written requests) go through here."""
        if self._sock is None:
            raise ConnectionError("not connected")
        self._sock.sendall(text.encode("utf-8"))

    def wait_for(self, request_id) -> dict:
        """Read responses until the one matching ``request_id`` arrives.

        Responses to *other* pipelined requests seen along the way are
        parked in a mailbox and handed out when their turn comes."""
        if request_id in self._mailbox:
            return self._mailbox.pop(request_id)
        while True:
            message = self._read_message()
            if message is None:
                raise ConnectionError("server closed the connection mid-request")
            if message.get("id") == request_id:
                return message
            self._mailbox[message.get("id")] = message

    def _read_message(self) -> dict | None:
        line = self._reader.readline()
        if not line:
            return None
        try:
            message = json.loads(line)
        except json.JSONDecodeError as error:
            raise ProtocolViolation(f"response is not JSON: {error}") from error
        if self.validate and not (
            isinstance(message, dict) and message.get("event") == "hello"
        ):
            problems = protocol.validate_response(message)
            if problems:
                raise ProtocolViolation(
                    f"bad response {line.strip()[:200]}: {'; '.join(problems)}"
                )
        return message
