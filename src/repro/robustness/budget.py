"""Resource budgets for inference runs.

A :class:`Budget` bounds one inference run along three axes:

* ``max_solver_steps`` — how many constraints the worklist solver may
  process (its fuel, in the sense of GHC's ``-fcontext-stack`` /
  ``-freduction-depth`` family of limits);
* ``max_unify_depth`` — how deeply the unifier may recurse into type
  structure, bounding both pathological types and runaway decomposition
  long before Python's own recursion limit;
* ``wall_clock`` — a deadline in seconds for the whole run.

The solver and unifier own their counters; the budget only *checks* them
(and remembers the latest values so a :class:`BudgetExceededError` can
report every counter, not just the one that tripped).  A budget is reused
across runs by calling :meth:`start` at the beginning of each run — the
batch driver does exactly that to give every expression the same fuel.

This module deliberately imports nothing from :mod:`repro.core` beyond
the error hierarchy, so the core engine can depend on it without cycles.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from repro.core.errors import BudgetExceededError

GAUGE_SAMPLE_EVERY = 64
"""Sample budget gauges once per this many solver steps — frequent
enough to see fuel draining in a trace, rare enough to stay cheap."""


@dataclass
class Budget:
    """Limits for one inference run; ``None`` means unlimited."""

    max_solver_steps: int | None = None
    max_unify_depth: int | None = None
    wall_clock: float | None = None
    """Deadline in seconds, measured from :meth:`start`."""

    deadline_at: float | None = None
    """Absolute deadline on the :func:`time.monotonic` clock — the serve
    daemon's deadline *propagation*: a request's deadline is fixed at
    admission, so time spent waiting in the queue consumes the same
    budget as time spent solving.  When both this and ``wall_clock`` are
    set, the earlier deadline wins."""

    tracer: object | None = field(default=None, repr=False, compare=False)
    """Optional :class:`~repro.observability.tracer.TracerLike`; when set
    and enabled, the budget samples its counters as gauges every
    :data:`GAUGE_SAMPLE_EVERY` solver steps and records a
    ``budget.exceeded`` event before raising."""

    solver_steps: int = field(default=0, init=False)
    """Steps the current run has used (updated by :meth:`check_solver_step`)."""

    solver_wakeups: int = field(default=0, init=False)
    """Deferred-constraint wake-ups the current run has performed (the
    scheduling work the wake-up queue does instead of full re-scans)."""

    peak_unify_depth: int = field(default=0, init=False)
    """Deepest unifier recursion seen in the current run."""

    _deadline_at: float | None = field(default=None, init=False, repr=False)
    _started_at: float | None = field(default=None, init=False, repr=False)

    def start(self) -> "Budget":
        """Reset the run counters and arm the wall-clock deadline."""
        self.solver_steps = 0
        self.solver_wakeups = 0
        self.peak_unify_depth = 0
        self._started_at = time.monotonic()
        relative = (
            self._started_at + self.wall_clock if self.wall_clock is not None else None
        )
        candidates = [at for at in (relative, self.deadline_at) if at is not None]
        self._deadline_at = min(candidates) if candidates else None
        return self

    def remaining_seconds(self) -> float | None:
        """Seconds until the armed deadline; ``None`` when unbounded.

        Callers that dequeue work (the serve daemon) use this to reject a
        request whose deadline expired while it waited, without paying
        for a doomed inference run.
        """
        if self._deadline_at is None:
            return None
        return self._deadline_at - time.monotonic()

    # ------------------------------------------------------------------
    # Checks (called by the solver / unifier with their own counters)
    # ------------------------------------------------------------------

    def check_solver_step(self, steps: int, constraint=None, wakeups: int = 0) -> None:
        """Record ``steps`` and raise if the step or time budget is gone."""
        self.solver_steps = steps
        self.solver_wakeups = wakeups
        if (
            self.tracer is not None
            and self.tracer.enabled
            and steps % GAUGE_SAMPLE_EVERY == 0
        ):
            self.tracer.gauge("budget.solver_steps", steps)
            if self.max_solver_steps is not None:
                self.tracer.gauge(
                    "budget.solver_steps_remaining", self.max_solver_steps - steps
                )
        if self.max_solver_steps is not None and steps > self.max_solver_steps:
            self._trace_exceeded("solver", "max_solver_steps", self.max_solver_steps)
            raise BudgetExceededError(
                phase="solver",
                limit_name="max_solver_steps",
                limit=self.max_solver_steps,
                counters=self.counters(),
                constraint=constraint,
            )
        self._check_deadline("solver", constraint)

    def check_unify_depth(self, depth: int, left=None, right=None) -> None:
        """Record ``depth`` and raise if the depth or time budget is gone."""
        if depth > self.peak_unify_depth:
            self.peak_unify_depth = depth
            if self.tracer is not None and self.tracer.enabled:
                self.tracer.gauge("budget.peak_unify_depth", depth)
        if self.max_unify_depth is not None and depth > self.max_unify_depth:
            self._trace_exceeded("unify", "max_unify_depth", self.max_unify_depth)
            raise BudgetExceededError(
                phase="unify",
                limit_name="max_unify_depth",
                limit=self.max_unify_depth,
                counters=self.counters(),
            )
        self._check_deadline("unify")

    def _check_deadline(self, phase: str, constraint=None) -> None:
        if self._deadline_at is not None and time.monotonic() > self._deadline_at:
            limit = self.wall_clock
            if limit is None and self._started_at is not None:
                limit = round(self._deadline_at - self._started_at, 6)
            self._trace_exceeded("deadline", "wall_clock", limit)
            raise BudgetExceededError(
                phase="deadline",
                limit_name="wall_clock",
                limit=limit,
                counters=self.counters(),
                constraint=constraint,
            )

    def _trace_exceeded(self, phase: str, limit_name: str, limit) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.inc("budget.exceeded")
            self.tracer.event(
                "budget.exceeded",
                phase=phase,
                limit_name=limit_name,
                limit=limit,
                counters=self.counters(),
            )

    # ------------------------------------------------------------------

    def counters(self) -> dict:
        """The run counters, for error reports and state snapshots."""
        elapsed = (
            round(time.monotonic() - self._started_at, 6)
            if self._started_at is not None
            else 0.0
        )
        return {
            "solver_steps": self.solver_steps,
            "solver_wakeups": self.solver_wakeups,
            "peak_unify_depth": self.peak_unify_depth,
            "elapsed_seconds": elapsed,
        }
