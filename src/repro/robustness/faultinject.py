"""Deterministic fault injection for the solver and unifier.

The engine exposes two hook points — one per solver worklist step, one
per unifier recursion level.  A :class:`FaultPlan` arms either (or both)
with a trigger: *fail at solver step N* or *raise at unification depth
D*.  When the trigger fires the plan raises :class:`InjectedFaultError`,
which is deliberately **not** a :class:`~repro.core.errors.GIError` —
an injected fault simulates an internal bug, so the crash-containment
layer at ``Inferencer.infer`` must convert it into an
:class:`~repro.core.errors.InternalError` for the test to pass.

Injection is deterministic: the solver and unifier report their own
counters, so the same program and the same plan fire at exactly the same
point on every run.

Like :mod:`repro.robustness.budget`, this module imports nothing from
:mod:`repro.core` so the engine can depend on it without cycles.
"""

from __future__ import annotations

from dataclasses import dataclass, field


class InjectedFaultError(RuntimeError):
    """The deliberately non-GI exception raised by an armed fault plan."""


@dataclass
class FaultPlan:
    """Where (if anywhere) to blow up during a run; ``None`` disarms."""

    fail_at_solver_step: int | None = None
    fail_at_unify_depth: int | None = None

    tracer: object | None = field(default=None, repr=False, compare=False)
    """Optional :class:`~repro.observability.tracer.TracerLike`; fired
    faults are tagged into the active span as ``fault.injected`` events."""

    fired: list[str] = field(default_factory=list, init=False)
    """Descriptions of faults that fired, for test assertions."""

    def start(self) -> "FaultPlan":
        """Reset the fired log (the triggers themselves are stateless)."""
        self.fired = []
        return self

    # -- hook points (called by the engine) -----------------------------

    def solver_step(self, step: int, constraint=None) -> None:
        if self.fail_at_solver_step is not None and step == self.fail_at_solver_step:
            self.fired.append(f"solver_step={step}")
            self._trace(f"solver_step={step}")
            raise InjectedFaultError(
                f"injected fault at solver step {step} (constraint: {constraint})"
            )

    def unify_depth(self, depth: int) -> None:
        if self.fail_at_unify_depth is not None and depth == self.fail_at_unify_depth:
            self.fired.append(f"unify_depth={depth}")
            self._trace(f"unify_depth={depth}")
            raise InjectedFaultError(f"injected fault at unification depth {depth}")

    def _trace(self, trigger: str) -> None:
        if self.tracer is not None and self.tracer.enabled:
            self.tracer.inc("faults.fired")
            self.tracer.event("fault.injected", trigger=trigger)
