"""An order-preserving worker pool with one :class:`Budget` per worker.

Both concurrent entry points — the module engine's per-layer group
checking and ``repro batch --jobs`` — funnel through this pool, so the
concurrency story lives in exactly one place:

* results come back in submission order, whatever order workers finish;
* every worker thread owns a private :class:`Budget` built by the
  ``budget_factory``, because a ``Budget`` re-arms (:meth:`Budget.start`)
  and mutates counters per run and therefore must never be shared across
  threads;
* ``jobs <= 1`` short-circuits to a plain serial loop — no threads, no
  scheduling noise, bit-identical to the historical behaviour.

The work function receives ``(item, budget)`` and is responsible for its
own containment: anything it raises propagates out of :meth:`map` after
all submitted work has been scheduled, so pool users hand it functions
that return diagnostics instead of raising (see
:func:`repro.robustness.batch.check_batch`).
"""

from __future__ import annotations

import threading
import traceback as _traceback
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Callable, Iterable, Sequence, TypeVar

from repro.core.errors import GIError, InternalError
from repro.robustness.budget import Budget

Item = TypeVar("Item")
Result = TypeVar("Result")


def clone_budget(budget: Budget | None) -> Budget | None:
    """A fresh, un-started budget with the same limits (and tracer)."""
    if budget is None:
        return None
    return Budget(
        max_solver_steps=budget.max_solver_steps,
        max_unify_depth=budget.max_unify_depth,
        wall_clock=budget.wall_clock,
        deadline_at=budget.deadline_at,
        tracer=budget.tracer,
    )


@dataclass
class WorkerPool:
    """A bounded pool; see the module docstring for the contract."""

    jobs: int = 1
    budget_factory: Callable[[], Budget | None] | None = None

    def map(
        self,
        fn: Callable[[Item, Budget | None], Result],
        items: Sequence[Item] | Iterable[Item],
    ) -> list[Result]:
        """Apply ``fn`` to every item, preserving input order."""
        items = list(items)
        if self.jobs <= 1 or len(items) <= 1:
            budget = self._make_budget()
            return [self._contained(fn, item, budget) for item in items]
        local = threading.local()

        def run(item: Item) -> Result:
            if not hasattr(local, "budget"):
                local.budget = self._make_budget()
            return self._contained(fn, item, local.budget)

        with ThreadPoolExecutor(max_workers=self.jobs) as executor:
            return list(executor.map(run, items))

    @staticmethod
    def _contained(
        fn: Callable[[Item, Budget | None], Result],
        item: Item,
        budget: Budget | None,
    ) -> Result:
        """Run one item, containing non-GI crashes of the *work function*.

        ``fn`` is supposed to catch engine errors itself and return
        diagnostics; if it crashes anyway (a bug in the driver, not the
        engine), the exception crosses a thread boundary and the original
        traceback would be lost to ``--json`` consumers.  Convert it here
        into an :class:`InternalError` whose snapshot carries the worker
        thread's name and the *formatted remote traceback*, so structured
        output shows where the crash actually happened.

        ``BaseException`` is deliberate: a worker raising ``SystemExit``
        or ``KeyboardInterrupt`` must not tear down the pool (or, through
        ``ThreadPoolExecutor.map``, the whole driver) — a task asking the
        *process* to exit is a contained task failure like any other.
        Even the fallback is guarded: if formatting the traceback or the
        error itself blows up, a bare placeholder ``InternalError`` still
        comes out, so containment cannot fail.
        """
        try:
            return fn(item, budget)
        except GIError:
            raise
        except BaseException as error:  # noqa: BLE001 — worker containment
            try:
                formatted = _traceback.format_exc()
            except Exception:  # pragma: no cover — formatting crashed
                formatted = None
            raise InternalError(
                error,
                phase="worker",
                snapshot={
                    "worker": threading.current_thread().name,
                    "traceback": formatted,
                },
            ) from error

    def _make_budget(self) -> Budget | None:
        return self.budget_factory() if self.budget_factory else None
