"""A seeded load generator for the ``repro serve`` daemon.

Drives N concurrent clients against one server, each with its own
connection (and therefore its own isolated session), sampling a
deterministic mix of request kinds per client from
``random.Random(f"{seed}:{client}")``:

* **well-typed** expressions over the Figure-1/2 prelude (the happy
  path, exercising the shared intern table);
* **ill-typed** expressions (parse errors, scope errors, guardedness
  violations — every one must come back as a typed ``error``);
* **adversarial-deep** application spines (budget pressure);
* **fault-injected** requests arming a deterministic
  :class:`~repro.robustness.faultinject.FaultPlan` server-side (needs
  ``--allow-faults``; every one must come back ``internal``, with the
  server still alive);
* **oversized** payloads (shed with ``PayloadTooLarge``; the connection
  closes and the client reconnects);
* **mid-request disconnects** (send, slam the socket shut, reconnect).

Every response is schema-validated on read (see
:class:`~repro.robustness.serveclient.ServeClient`); the report counts
outcomes by status and error class and summarises client-observed
latency (p50/p95/p99) over *served* requests — shed responses are
counted separately, which is exactly the split the overload acceptance
test needs.  The CLI lives at ``python -m repro loadgen``.
"""

from __future__ import annotations

import random
import threading
import time
from dataclasses import dataclass, field

from repro.robustness.serveclient import ProtocolViolation, ServeClient

WELL_TYPED = (
    "head ids",
    "single id",
    r"\x y -> y",
    "choose id",
    "id auto",
    "poly id",
    r"poly (\x -> x)",
    "length ids",
    "id : ids",
    "single inc ++ single id",
    "map head (single ids)",
    "app poly id",
    "revapp id poly",
    "app runST argST",
    r"k (\x -> h x) lst",
    "let y = choose id in y inc",
    "pair 1 True",
)

ILL_TYPED = (
    "nope",                  # scope error
    "ids 1",                 # a list is not a function
    r"\x -> x x",            # needs an annotation (B1-style)
    "head 1",
    "poly 1",
    "choose id auto'",       # Figure 2 A8 — GI rejects
    "k h lst",               # Figure 2 E1 — all systems reject
    "((",                    # parse error
    "let x = in x",          # parse error
    "(single id :: Int)",    # annotation mismatch
)

SERVED_STATUSES = ("ok", "error", "internal")
"""Outcomes of requests that were admitted and ran to a response."""


def deep_expr(depth: int) -> str:
    """An application spine ``single (single (... id))`` of given depth."""
    expr = "id"
    for _ in range(depth):
        expr = f"single ({expr})"
    return expr


@dataclass
class LoadConfig:
    """One load run; weights need not sum to 1 (the rest is well-typed)."""

    socket_path: str | None = None
    host: str = "127.0.0.1"
    port: int | None = None
    clients: int = 8
    requests: int = 50
    """Requests per client."""

    seed: int = 0
    timeout_ms: int = 10_000
    ill_rate: float = 0.2
    deep_rate: float = 0.1
    deep_depth: int = 30
    fault_rate: float = 0.0
    oversize_rate: float = 0.0
    oversize_bytes: int = 2_000_000
    disconnect_rate: float = 0.0


@dataclass
class LoadReport:
    """Aggregated outcomes of one load run."""

    clients: int = 0
    requests_sent: int = 0
    elapsed_s: float = 0.0
    by_status: dict = field(default_factory=dict)
    by_error_class: dict = field(default_factory=dict)
    latencies_ms: list = field(default_factory=list)
    """Client-observed latencies of *served* requests, unsorted."""

    violations: list = field(default_factory=list)
    """Schema violations and unexpected client-side crashes — the soak
    asserts this stays empty."""

    @property
    def served(self) -> int:
        return sum(self.by_status.get(status, 0) for status in SERVED_STATUSES)

    @property
    def throughput_rps(self) -> float:
        return self.served / self.elapsed_s if self.elapsed_s > 0 else 0.0

    def percentiles(self) -> dict:
        from repro.observability.metrics import percentile

        ordered = sorted(self.latencies_ms)
        if not ordered:
            return {"count": 0}
        return {
            "count": len(ordered),
            "mean": round(sum(ordered) / len(ordered), 3),
            "p50": round(percentile(ordered, 0.50), 3),
            "p95": round(percentile(ordered, 0.95), 3),
            "p99": round(percentile(ordered, 0.99), 3),
            "max": round(ordered[-1], 3),
        }

    def to_dict(self) -> dict:
        return {
            "clients": self.clients,
            "requests_sent": self.requests_sent,
            "served": self.served,
            "elapsed_s": round(self.elapsed_s, 3),
            "throughput_rps": round(self.throughput_rps, 1),
            "by_status": dict(sorted(self.by_status.items())),
            "by_error_class": dict(sorted(self.by_error_class.items())),
            "latency_ms": self.percentiles(),
            "violations": list(self.violations),
        }


def _pick_kind(rng: random.Random, config: LoadConfig) -> str:
    roll = rng.random()
    for kind, rate in (
        ("disconnect", config.disconnect_rate),
        ("oversize", config.oversize_rate),
        ("fault", config.fault_rate),
        ("deep", config.deep_rate),
        ("ill", config.ill_rate),
    ):
        if roll < rate:
            return kind
        roll -= rate
    return "well"


def _record(report: LoadReport, lock: threading.Lock, status: str, reply=None, ms=None):
    with lock:
        report.by_status[status] = report.by_status.get(status, 0) + 1
        if reply is not None and not reply.get("ok"):
            error_class = reply["error"]["class"]
            report.by_error_class[error_class] = (
                report.by_error_class.get(error_class, 0) + 1
            )
        if ms is not None and status in SERVED_STATUSES:
            report.latencies_ms.append(ms)


def _client_worker(
    index: int, config: LoadConfig, report: LoadReport, lock: threading.Lock
) -> None:
    rng = random.Random(f"{config.seed}:{index}")
    client = ServeClient(
        socket_path=config.socket_path, host=config.host, port=config.port
    )
    client.connect()
    try:
        for _ in range(config.requests):
            kind = _pick_kind(rng, config)
            with lock:
                report.requests_sent += 1
            try:
                if kind == "disconnect":
                    client.send("infer", expr=rng.choice(WELL_TYPED))
                    client.close()
                    _record(report, lock, "disconnected")
                    client.connect()
                    continue
                if kind == "oversize":
                    filler = "x" * config.oversize_bytes
                    client.send_raw(
                        f'{{"v":1,"id":0,"op":"infer","expr":"{filler}"}}\n'
                    )
                    reply = client.wait_for(None)
                    _record(report, lock, "oversized", reply)
                    client.close()  # the server closes after an oversize
                    client.connect()
                    continue
                fields: dict = {"timeout_ms": config.timeout_ms}
                if kind == "fault":
                    if rng.random() < 0.5:
                        fields["fault_step"] = rng.randint(1, 64)
                    else:
                        fields["fault_depth"] = rng.randint(1, 16)
                    expr = rng.choice(WELL_TYPED)
                elif kind == "deep":
                    expr = deep_expr(config.deep_depth)
                elif kind == "ill":
                    expr = rng.choice(ILL_TYPED)
                else:
                    expr = rng.choice(WELL_TYPED)
                started = time.perf_counter()
                reply = client.request("infer", expr=expr, **fields)
                ms = (time.perf_counter() - started) * 1000.0
                if reply.get("ok"):
                    _record(report, lock, "ok", reply, ms)
                else:
                    severity = reply["error"]["severity"]
                    status = severity if severity != "error" else "error"
                    _record(report, lock, status, reply, ms)
            except ProtocolViolation as violation:
                with lock:
                    report.violations.append(str(violation))
            except (ConnectionError, OSError) as error:
                # A dropped connection is a robustness data point, not a
                # crash; reconnect and keep the load coming.
                _record(report, lock, "connection_lost")
                _ = error
                try:
                    client.close()
                    client.connect()
                except OSError:
                    return  # the server really is gone; the soak will see it
    finally:
        client.close()


def run_load(config: LoadConfig) -> LoadReport:
    """Run the full load: ``clients`` threads × ``requests`` each."""
    report = LoadReport(clients=config.clients)
    lock = threading.Lock()
    threads = [
        threading.Thread(
            target=_client_worker,
            args=(index, config, report, lock),
            name=f"loadgen-{index}",
            daemon=True,
        )
        for index in range(config.clients)
    ]
    started = time.perf_counter()
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    report.elapsed_s = time.perf_counter() - started
    return report


def render_load_text(report: LoadReport) -> str:
    """The human-readable summary printed by ``repro loadgen``."""
    payload = report.to_dict()
    lines = [
        f"{payload['served']}/{payload['requests_sent']} served "
        f"in {payload['elapsed_s']}s ({payload['throughput_rps']} req/s)",
        "status: "
        + ", ".join(f"{k}={v}" for k, v in payload["by_status"].items()),
    ]
    if payload["by_error_class"]:
        lines.append(
            "errors: "
            + ", ".join(f"{k}={v}" for k, v in payload["by_error_class"].items())
        )
    latency = payload["latency_ms"]
    if latency.get("count"):
        lines.append(
            f"latency ms: p50={latency['p50']} p95={latency['p95']} "
            f"p99={latency['p99']} max={latency['max']}"
        )
    if payload["violations"]:
        lines.append(f"VIOLATIONS ({len(payload['violations'])}):")
        lines.extend(f"  {violation}" for violation in payload["violations"][:10])
    return "\n".join(lines)
