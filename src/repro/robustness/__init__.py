"""Robustness layer: budgets, crash containment, fault injection, batch.

Three guarantees, layered over the core engine:

* **bounded** — a :class:`Budget` (solver fuel, unification depth, wall
  clock) threaded through the solver and unifier turns divergence into a
  structured :class:`~repro.core.errors.BudgetExceededError`;
* **contained** — ``Inferencer.infer`` converts any internal failure into
  an :class:`~repro.core.errors.InternalError`, so the public API raises
  :class:`~repro.core.errors.GIError` or nothing;
* **isolated** — :func:`check_batch` checks many expressions, each under
  its own budget, accumulating diagnostics instead of stopping at the
  first failure.

:mod:`repro.robustness.faultinject` provides the deterministic fault
harness the test suite uses to prove the first two guarantees hold at
every solver step and unification depth.

The serve daemon (:mod:`repro.robustness.server`) extends the same
guarantees across a process boundary: per-request containment, deadline
propagation, typed load shedding and a graceful drain — see
DESIGN.md § Serving.

The batch driver and the serve stack are imported lazily: the core
engine imports ``repro.robustness.budget`` / ``faultinject`` (which
touch nothing in core but the error classes), while ``batch`` and
``server`` import the full engine — eager re-export here would close
that loop during interpreter start-up.
"""

from repro.robustness.budget import Budget
from repro.robustness.faultinject import FaultPlan, InjectedFaultError
from repro.robustness.pool import WorkerPool, clone_budget

_BATCH_EXPORTS = (
    "BatchItem",
    "BatchResult",
    "BatchSource",
    "Diagnostic",
    "check_batch",
    "read_batch_file",
    "render_text",
    "seeded_fault_plan",
)

_SERVE_EXPORTS = {
    "GIServer": "server",
    "ServeConfig": "server",
    "ServerHandle": "server",
    "start_server_in_thread": "server",
    "ProtocolViolation": "serveclient",
    "ServeClient": "serveclient",
    "LoadConfig": "loadgen",
    "LoadReport": "loadgen",
    "run_load": "loadgen",
}

__all__ = [
    "Budget",
    "FaultPlan",
    "InjectedFaultError",
    "WorkerPool",
    "clone_budget",
    *_BATCH_EXPORTS,
    *_SERVE_EXPORTS,
]


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.robustness import batch

        return getattr(batch, name)
    if name in _SERVE_EXPORTS:
        import importlib

        module = importlib.import_module(f"repro.robustness.{_SERVE_EXPORTS[name]}")
        return getattr(module, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
