"""``repro serve`` — a fault-contained, long-lived type-checking daemon.

One asyncio process serves many concurrent clients over a Unix socket or
TCP port, speaking the versioned JSONL protocol of
:mod:`repro.robustness.protocol`.  The design goal is a server that
**never dies**: every robustness primitive the repo already has is
lifted to process scope here.

* **Sessions** — each connection gets an isolated env/cache namespace
  (a :class:`Session`), so one client's ``module`` definitions, faults
  and failures can never alter another client's results.  Requests may
  name a ``session`` explicitly to share one namespace across
  connections.  All sessions share a single hash-consed
  :class:`~repro.core.types.InternTable` (bounded by
  ``intern_capacity``), so common prelude types are allocated once per
  process, not once per client.
* **Crash containment per request** — the worker-side executor converts
  *any* non-:class:`~repro.core.errors.GIError` escape (engine bugs,
  injected faults, even response-serialisation failures) into a
  structured ``internal`` response.  The connection and the server
  survive; only the request fails.
* **Deadlines, propagated** — a request's deadline is fixed at
  admission from ``timeout_ms`` clamped by the server ceiling, and is
  carried into the run as :attr:`Budget.deadline_at` — so time spent
  waiting in the queue spends the same budget as time spent solving,
  and a request whose deadline expired in the queue is rejected without
  paying for a doomed inference.
* **Backpressure** — admission is bounded by ``queue_limit``
  outstanding requests.  Beyond it the server *sheds load*: an
  immediate typed ``overloaded`` response with a ``retry_after_ms``
  hint derived from recent service times, instead of queueing without
  bound.  The p99 of accepted requests therefore stays bounded by
  ``queue_limit / jobs`` service times, whatever the offered load.
* **Graceful lifecycle** — SIGINT/SIGTERM (or a ``shutdown`` request)
  starts a drain: stop accepting, fail new requests with typed
  ``unavailable`` responses, let in-flight work finish within a grace
  period, cancel what remains with typed responses, then flush trace,
  metrics and module-cache sidecars before exiting cleanly.

Inference runs on a bounded :class:`ThreadPoolExecutor` (``jobs``
workers) while the event loop stays free for I/O, admission and
shedding — an overloaded server keeps answering ``stats`` and keeps
saying ``overloaded`` promptly.
"""

from __future__ import annotations

import asyncio
import threading
import time
import traceback as _traceback
from collections import deque
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass, field

from repro.core.env import Environment
from repro.core.errors import GIError, InternalError
from repro.core.infer import InferOptions, Inferencer
from repro.core.solver import InstanceEnv
from repro.core.terms import Ann
from repro.core.types import InternTable
from repro.robustness import protocol
from repro.robustness.budget import Budget
from repro.robustness.faultinject import FaultPlan


@dataclass
class ServeConfig:
    """Everything ``python -m repro serve`` can tune."""

    socket_path: str | None = None
    """Unix socket to listen on; mutually exclusive with ``port``."""

    host: str = "127.0.0.1"
    port: int | None = None
    """TCP port (0 picks an ephemeral one, reported on ``address``)."""

    jobs: int = 2
    """Worker threads running inference (the event loop only does I/O)."""

    queue_limit: int = 64
    """Maximum admitted-but-unfinished requests; beyond it, load is shed."""

    default_timeout_ms: int = 10_000
    max_timeout_ms: int = 30_000
    """Ceiling clamping any client-supplied ``timeout_ms``."""

    max_solver_steps: int | None = 1_000_000
    max_unify_depth: int | None = 100_000
    """Per-request budget ceilings (clients may only lower them)."""

    max_line_bytes: int = protocol.MAX_LINE_BYTES
    """Requests longer than one line of this many bytes are rejected
    with ``PayloadTooLarge`` and the connection is closed (the stream
    cannot be resynchronised after an oversized line)."""

    allow_faults: bool = False
    """Accept ``fault_step`` / ``fault_depth`` request fields (the
    fault-injection soak harness); off by default."""

    drain_grace_s: float = 5.0
    """How long a drain waits for in-flight work before cancelling it."""

    trace_path: str | None = None
    """Stream JSONL trace events (schema v1) here; flushed on drain."""

    intern_capacity: int | None = 1_000_000
    """Bound on the shared hash-consing table (entries, not bytes)."""


class ModuleReadError(GIError):
    """A ``module`` request named a path the server could not read."""

    def __init__(self, path: str, cause: OSError) -> None:
        self.phase = "io"
        super().__init__(f"cannot read {path}: {cause}")


@dataclass
class Session:
    """One isolated env/cache namespace (see the module docstring)."""

    name: str
    env: Environment
    named: bool = False
    """Named sessions outlive their creating connection; per-connection
    default sessions are dropped (sidecars saved) on disconnect."""

    lock: threading.Lock = field(default_factory=threading.Lock, repr=False)
    """Serialises env-mutating operations (``module``) in the session."""

    caches: dict = field(default_factory=dict, repr=False)
    """Per-module :class:`ModuleCache` instances, keyed by the request's
    ``path`` (or ``"(inline)"`` for ``source`` modules).  Path-keyed
    caches load from / save to ``<path>.cache.json`` sidecars."""

    requests: int = 0


_INLINE = "(inline)"


class GIServer:
    """The daemon; construct, then ``await run()`` (or use
    :func:`start_server_in_thread` from synchronous code)."""

    def __init__(
        self,
        config: ServeConfig,
        env: Environment | None = None,
        instances: InstanceEnv | None = None,
        options: InferOptions | None = None,
    ) -> None:
        self.config = config
        self._base_env = env
        self.instances = instances
        self.options = options
        self.intern = InternTable(capacity=config.intern_capacity)
        self.sessions: dict[str, Session] = {}
        self.address: tuple[str, int] | str | None = None
        self.tracer = None
        self._writer = None
        if config.trace_path is not None:
            from repro.observability import JsonlWriter, Tracer

            self._writer = JsonlWriter(open(config.trace_path, "w", encoding="utf-8"))
            self.tracer = Tracer(sink=self._writer, retain_events=False)
            self.intern.attach_tracer(self.tracer)
        self._executor: ThreadPoolExecutor | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._server: asyncio.AbstractServer | None = None
        self._stopped: asyncio.Event | None = None
        self._idle: asyncio.Event | None = None
        self._tasks: set[asyncio.Task] = set()
        self._conn_writers: set[asyncio.StreamWriter] = set()
        self._pending = 0
        self._conn_seq = 0
        self._draining = False
        self._shutdown_started = False
        self._started_at = time.monotonic()
        self._recent_ms: deque[float] = deque(maxlen=256)
        """Recent service times, feeding ``retry_after_ms`` and stats."""
        self.counts = {
            "total": 0,
            "ok": 0,
            "error": 0,
            "internal": 0,
            "shed": 0,
            "unavailable": 0,
            "protocol": 0,
            "disconnects": 0,
        }
        self.by_op: dict[str, int] = {}
        self.exit_reason: str | None = None

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------

    def base_env(self) -> Environment:
        if self._base_env is None:
            from repro.evalsuite.figure2 import figure2_env

            self._base_env = figure2_env()
        return self._base_env

    async def run(self, ready=None) -> None:
        """Serve until a drain completes (signal or ``shutdown`` op)."""
        self._loop = asyncio.get_running_loop()
        self._stopped = asyncio.Event()
        self._idle = asyncio.Event()
        self._idle.set()
        self._executor = ThreadPoolExecutor(
            max_workers=self.config.jobs, thread_name_prefix="serve-worker"
        )
        self.base_env()  # build the prelude before accepting traffic
        if self.config.socket_path is not None:
            self._server = await asyncio.start_unix_server(
                self._handle_connection,
                path=self.config.socket_path,
                limit=self.config.max_line_bytes,
            )
            self.address = self.config.socket_path
        else:
            self._server = await asyncio.start_server(
                self._handle_connection,
                self.config.host,
                self.config.port or 0,
                limit=self.config.max_line_bytes,
            )
            sockname = self._server.sockets[0].getsockname()
            self.address = (sockname[0], sockname[1])
        self._install_signal_handlers()
        if self.tracer is not None:
            self.tracer.event("serve.start", address=str(self.address))
        if ready is not None:
            ready(self)
        await self._stopped.wait()

    def _install_signal_handlers(self) -> None:
        import signal as _signal

        for signum in (_signal.SIGINT, _signal.SIGTERM):
            try:
                self._loop.add_signal_handler(
                    signum,
                    lambda s=signum: self._loop.create_task(
                        self.shutdown(reason=_signal.Signals(s).name)
                    ),
                )
            except (NotImplementedError, RuntimeError, ValueError):
                # Not the main thread (tests) or an exotic platform —
                # lifecycle is then driven by the `shutdown` op instead.
                return

    async def shutdown(self, reason: str = "shutdown") -> None:
        """Graceful drain; idempotent.  See the module docstring."""
        if self._shutdown_started:
            return
        self._shutdown_started = True
        self._draining = True
        self.exit_reason = reason
        if self.tracer is not None:
            self.tracer.event("serve.drain", reason=reason, pending=self._pending)
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        try:
            await asyncio.wait_for(self._idle.wait(), self.config.drain_grace_s)
        except asyncio.TimeoutError:
            pass
        # Cancel whatever the grace period did not finish: queued work
        # raises CancelledError inside its awaiting task, which answers
        # the client with a typed `unavailable` response.
        self._executor.shutdown(wait=False, cancel_futures=True)
        if self._tasks:
            await asyncio.gather(*list(self._tasks), return_exceptions=True)
        self._flush()
        for writer in list(self._conn_writers):
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — already-dead sockets
                pass
        if self.config.socket_path is not None:
            import os

            try:
                os.unlink(self.config.socket_path)
            except OSError:
                pass
        self._stopped.set()

    def _flush(self) -> None:
        """Persist cache sidecars and close the trace sink."""
        for session in self.sessions.values():
            _save_sidecars(session)
        if self.tracer is not None:
            self.tracer.event("serve.stop", requests=self.counts["total"])
            self.tracer.emit_metrics_event()
        if self._writer is not None:
            self._writer.close()
            self._writer = None

    # ------------------------------------------------------------------
    # Connections
    # ------------------------------------------------------------------

    def _session_for(self, name: str | None, default: Session) -> Session:
        if name is None:
            return default
        session = self.sessions.get(name)
        if session is None:
            session = Session(name=name, env=self.base_env(), named=True)
            self.sessions[name] = session
        return session

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        self._conn_seq += 1
        conn_name = f"conn-{self._conn_seq}"
        session = Session(name=conn_name, env=self.base_env())
        self.sessions[conn_name] = session
        self._conn_writers.add(writer)
        write_lock = asyncio.Lock()
        try:
            await self._send(writer, write_lock, protocol.hello(conn_name))
            while True:
                line = await self._read_line(reader)
                if line is _OVERSIZE:
                    self.counts["protocol"] += 1
                    await self._send(
                        writer,
                        write_lock,
                        protocol.error_response(
                            None,
                            "PayloadTooLarge",
                            f"request line exceeds {self.config.max_line_bytes} "
                            "bytes; closing connection",
                        ),
                    )
                    break
                if line is None:
                    break
                text = line.strip()
                if not text:
                    continue
                await self._dispatch_line(text, session, writer, write_lock)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.counts["disconnects"] += 1
            if self.tracer is not None:
                self.tracer.event("serve.disconnect", session=conn_name)
            self._conn_writers.discard(writer)
            dropped = self.sessions.pop(conn_name, None)
            if dropped is not None:
                _save_sidecars(dropped)
            try:
                writer.close()
            except Exception:  # noqa: BLE001 — already-dead sockets
                pass

    async def _read_line(self, reader: asyncio.StreamReader):
        try:
            return (await reader.readuntil(b"\n")).decode("utf-8", "replace")
        except asyncio.IncompleteReadError as eof:
            if eof.partial:
                return eof.partial.decode("utf-8", "replace")
            return None
        except asyncio.LimitOverrunError:
            return _OVERSIZE
        except (ConnectionResetError, BrokenPipeError):
            return None

    async def _dispatch_line(self, text, session, writer, write_lock) -> None:
        import json

        try:
            request = json.loads(text)
        except json.JSONDecodeError as error:
            self.counts["protocol"] += 1
            await self._send(
                writer,
                write_lock,
                protocol.error_response(None, "ProtocolError", f"not valid JSON: {error}"),
            )
            return
        request_id = request.get("id") if isinstance(request, dict) else None
        problems = protocol.validate_request(request)
        if not problems and not self.config.allow_faults:
            if "fault_step" in request or "fault_depth" in request:
                problems = ["fault injection is disabled (start with --allow-faults)"]
        if problems:
            self.counts["protocol"] += 1
            await self._send(
                writer,
                write_lock,
                protocol.error_response(
                    request_id, "ProtocolError", "; ".join(problems)
                ),
            )
            return
        op = request["op"]
        self.counts["total"] += 1
        self.by_op[op] = self.by_op.get(op, 0) + 1
        if op == "stats":
            self.counts["ok"] += 1
            await self._send(
                writer, write_lock, protocol.ok_response(request_id, "stats", **self.stats())
            )
            return
        if op == "shutdown":
            self.counts["ok"] += 1
            # Refuse admission *now* — the drain task itself may only get
            # scheduled after further lines from this connection.
            self._draining = True
            await self._send(
                writer,
                write_lock,
                protocol.ok_response(request_id, "shutdown", draining=True),
            )
            asyncio.get_running_loop().create_task(self.shutdown(reason="shutdown-op"))
            return
        if self._draining:
            self.counts["unavailable"] += 1
            await self._send(
                writer,
                write_lock,
                protocol.error_response(
                    request_id,
                    "ShuttingDown",
                    "server is draining and accepts no new work",
                    severity=protocol.SEVERITY_UNAVAILABLE,
                    op=op,
                ),
            )
            return
        if self._pending >= self.config.queue_limit:
            self.counts["shed"] += 1
            if self.tracer is not None:
                self.tracer.inc("serve.shed")
                self.tracer.event("serve.shed", op=op, pending=self._pending)
            await self._send(
                writer,
                write_lock,
                protocol.error_response(
                    request_id,
                    "Overloaded",
                    f"request queue is full ({self._pending} outstanding); "
                    "retry after the hinted delay",
                    severity=protocol.SEVERITY_OVERLOADED,
                    op=op,
                    retry_after_ms=self._retry_after_ms(),
                ),
            )
            return

        target = self._session_for(request.get("session"), session)
        target.requests += 1
        deadline = time.monotonic() + self._clamped_timeout_s(request)
        self._pending += 1
        self._idle.clear()
        if self.tracer is not None:
            self.tracer.gauge("serve.queue_depth", self._pending)
        task = asyncio.get_running_loop().create_task(
            self._run_request(request, target, deadline, writer, write_lock)
        )
        self._tasks.add(task)
        task.add_done_callback(self._tasks.discard)

    async def _run_request(self, request, session, deadline, writer, write_lock) -> None:
        admitted = time.monotonic()
        op = request["op"]
        try:
            try:
                response = await asyncio.get_running_loop().run_in_executor(
                    self._executor, self._execute, request, session, deadline, admitted
                )
            except asyncio.CancelledError:
                # The drain cancelled this request while it sat in the
                # executor queue; answer with a typed response.
                response = protocol.error_response(
                    request["id"],
                    "ShuttingDown",
                    "request cancelled by server drain before it started",
                    severity=protocol.SEVERITY_UNAVAILABLE,
                    op=op,
                )
            except Exception as error:  # noqa: BLE001 — loop-side containment
                response = protocol.error_response(
                    request["id"],
                    "InternalError",
                    f"request scheduling failed ({type(error).__name__}): {error}",
                    severity=protocol.SEVERITY_INTERNAL,
                    op=op,
                )
        finally:
            self._pending -= 1
            if self._pending == 0:
                self._idle.set()
        status = "ok" if response.get("ok") else response["error"].get("severity")
        if status not in self.counts:
            status = "error"
        self.counts[status] += 1
        if "ms" in response:
            self._recent_ms.append(response["ms"])
            if self.tracer is not None:
                self.tracer.observe("serve.latency_ms", response["ms"])
        await self._send(writer, write_lock, response)

    async def _send(self, writer, write_lock, message: dict) -> None:
        try:
            payload = protocol.encode(message)
        except (TypeError, ValueError):
            # A payload that refuses to serialise must not kill the
            # connection handler — degrade to a structured internal error.
            payload = protocol.encode(
                protocol.error_response(
                    message.get("id"),
                    "ResponseEncodingError",
                    "response payload was not JSON-serialisable",
                    severity=protocol.SEVERITY_INTERNAL,
                )
            )
        try:
            async with write_lock:
                writer.write(payload)
                await writer.drain()
        except (ConnectionResetError, BrokenPipeError, RuntimeError, OSError):
            self.counts["disconnects"] += 1

    # ------------------------------------------------------------------
    # Request execution (worker threads)
    # ------------------------------------------------------------------

    def _clamped_timeout_s(self, request: dict) -> float:
        requested = request.get("timeout_ms", self.config.default_timeout_ms)
        return min(float(requested), float(self.config.max_timeout_ms)) / 1000.0

    def _budget(self, request: dict, deadline: float) -> Budget:
        steps = self.config.max_solver_steps
        if request.get("max_steps") is not None:
            steps = min(request["max_steps"], steps or request["max_steps"])
        depth = self.config.max_unify_depth
        if request.get("max_depth") is not None:
            depth = min(request["max_depth"], depth or request["max_depth"])
        return Budget(
            max_solver_steps=steps,
            max_unify_depth=depth,
            deadline_at=deadline,
            tracer=self.tracer,
        )

    def _retry_after_ms(self) -> int:
        if self._recent_ms:
            average = sum(self._recent_ms) / len(self._recent_ms)
        else:
            average = 10.0
        estimate = average * max(1, self._pending) / max(1, self.config.jobs)
        return max(5, min(int(estimate), 5_000))

    def _execute(self, request: dict, session: Session, deadline, admitted) -> dict:
        """Run one request to a response dict.  Never raises: this is the
        server's crash-containment boundary (one per request)."""
        from contextlib import nullcontext

        op = request["op"]
        request_id = request["id"]
        queue_ms = round((time.monotonic() - admitted) * 1000.0, 3)
        tracing = self.tracer is not None
        span_cm = (
            self.tracer.span(
                "serve.request", op=op, session=session.name, queue_ms=queue_ms
            )
            if tracing
            else nullcontext()
        )
        started = time.perf_counter()
        with span_cm:
            try:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    return protocol.error_response(
                        request_id,
                        "DeadlineExpired",
                        f"deadline expired after {queue_ms:.0f}ms in the queue",
                        op=op,
                        phase="queue",
                        ms=self._elapsed_ms(started),
                    )
                payload = self._perform(op, request, session, deadline)
                response = protocol.ok_response(
                    request_id, op, ms=self._elapsed_ms(started), **payload
                )
            except GIError as error:
                internal = isinstance(error, InternalError)
                response = protocol.error_response(
                    request_id,
                    type(error).__name__,
                    str(error),
                    severity=protocol.SEVERITY_INTERNAL
                    if internal
                    else protocol.SEVERITY_ERROR,
                    op=op,
                    phase=getattr(error, "phase", None),
                    ms=self._elapsed_ms(started),
                )
                if internal:
                    response["error"]["traceback"] = error.snapshot.get("traceback")
            except BaseException as error:  # noqa: BLE001 — containment
                contained = InternalError(
                    error,
                    phase="serve",
                    snapshot={"op": op, "traceback": _traceback.format_exc()},
                )
                response = protocol.error_response(
                    request_id,
                    "InternalError",
                    str(contained),
                    severity=protocol.SEVERITY_INTERNAL,
                    op=op,
                    phase="serve",
                    ms=self._elapsed_ms(started),
                )
                response["error"]["traceback"] = contained.snapshot.get("traceback")
            if tracing:
                self.tracer.event(
                    "serve.response",
                    op=op,
                    ok=bool(response.get("ok")),
                    status="ok"
                    if response.get("ok")
                    else response["error"]["severity"],
                    ms=response.get("ms"),
                    queue_ms=queue_ms,
                )
            return response

    @staticmethod
    def _elapsed_ms(started: float) -> float:
        return round((time.perf_counter() - started) * 1000.0, 3)

    def _options_for(self, request: dict) -> InferOptions | None:
        """The per-request inference options: the server defaults, with
        the request's ``policy`` field (validated at admission) applied."""
        name = request.get("policy")
        if name is None:
            return self.options
        from dataclasses import replace

        from repro.core.policy import parse_policy

        base = self.options if self.options is not None else InferOptions()
        return replace(base, policy=parse_policy(name))

    def _perform(self, op: str, request: dict, session: Session, deadline) -> dict:
        from repro.robustness.batch import _parse_contained

        budget = self._budget(request, deadline)
        options = self._options_for(request)
        if op in ("check", "infer"):
            faults = None
            if request.get("fault_step") or request.get("fault_depth"):
                faults = FaultPlan(
                    fail_at_solver_step=request.get("fault_step"),
                    fail_at_unify_depth=request.get("fault_depth"),
                )
            term = _parse_contained(request["expr"])
            if op == "check":
                from repro.syntax import parse_type

                term = Ann(term, parse_type(request["signature"]))
            inferencer = Inferencer(
                session.env,
                self.instances,
                options,
                budget=budget,
                faults=faults,
                tracer=self.tracer,
                intern=self.intern,
            )
            result = inferencer.infer(term)
            return {"type": str(result.type_), "solver_steps": result.solver.steps}
        if op == "explain":
            from repro.observability import Tracer, explain_tracer

            local = Tracer()
            term = _parse_contained(request["expr"])
            result = Inferencer(
                session.env,
                self.instances,
                options,
                budget=budget,
                tracer=local,
                intern=self.intern,
            ).infer(term)
            return {"type": str(result.type_), "explanation": explain_tracer(local)}
        if op == "module":
            return self._perform_module(request, session, budget, options)
        raise AssertionError(f"unreachable op {op}")  # pragma: no cover

    def _perform_module(
        self, request: dict, session: Session, budget, options: InferOptions
    ) -> dict:
        from repro.modules import ModuleCache, ModuleEngine

        path = request.get("path")
        with session.lock:
            if path is not None:
                try:
                    with open(path, "r", encoding="utf-8") as handle:
                        source = handle.read()
                except OSError as error:
                    raise ModuleReadError(path, error) from error
                key = path
            else:
                source = request["source"]
                key = _INLINE
            cache = session.caches.get(key)
            if cache is None:
                cache = (
                    ModuleCache.load(path + ".cache.json")
                    if path is not None
                    else ModuleCache()
                )
                session.caches[key] = cache
            engine = ModuleEngine(
                session.env,
                self.instances,
                options,
                budget=budget,
                jobs=1,  # request-level parallelism comes from the executor
                cache=cache,
                tracer=self.tracer,
            )
            result = engine.check_source(source, path=path)
            session.env = result.env
        payload = {
            "total": len(result.reports),
            "passed": len(result.reports) - len(result.failures),
            "failed": len(result.failures),
            "types": result.types,
            "cached": sum(1 for report in result.reports if report.cached),
            "diagnostics": [
                report.diagnostic.to_dict() for report in result.failures
            ],
        }
        if request.get("stats"):
            payload["stats"] = result.stats.to_dict()
        return payload

    # ------------------------------------------------------------------

    def stats(self) -> dict:
        from repro.observability.metrics import percentile

        recent = sorted(self._recent_ms)
        latency = (
            {
                "count": len(recent),
                "p50": round(percentile(recent, 0.50), 3),
                "p95": round(percentile(recent, 0.95), 3),
                "p99": round(percentile(recent, 0.99), 3),
            }
            if recent
            else {"count": 0}
        )
        return {
            "uptime_s": round(time.monotonic() - self._started_at, 3),
            "draining": self._draining,
            "requests": dict(self.counts),
            "by_op": dict(self.by_op),
            "queue": {
                "pending": self._pending,
                "limit": self.config.queue_limit,
                "jobs": self.config.jobs,
            },
            "sessions": len(self.sessions),
            "intern_size": len(self.intern),
            "intern": self.intern.stats(),
            "latency_ms": latency,
        }


_OVERSIZE = object()
"""Sentinel returned by ``_read_line`` for an over-limit request line."""


def _save_sidecars(session: Session) -> None:
    """Atomically persist every path-keyed cache of a session."""
    for key, cache in session.caches.items():
        if key == _INLINE:
            continue
        try:
            cache.save(key + ".cache.json")
        except OSError:
            pass  # read-only location degrades to no persistence


# ----------------------------------------------------------------------
# Running a server from synchronous code (tests, benchmarks)
# ----------------------------------------------------------------------


class ServerHandle:
    """A server running on a daemon thread, stoppable from the caller."""

    def __init__(self, server: GIServer, thread: threading.Thread) -> None:
        self.server = server
        self.thread = thread

    @property
    def address(self):
        return self.server.address

    def stop(self, timeout: float = 15.0) -> None:
        """Request a graceful drain and wait for the thread to exit."""
        loop = self.server._loop
        if loop is not None and loop.is_running():
            try:
                asyncio.run_coroutine_threadsafe(self.server.shutdown(), loop)
            except RuntimeError:  # pragma: no cover — loop already gone
                pass
        self.thread.join(timeout)

    def __enter__(self) -> "ServerHandle":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


def start_server_in_thread(
    config: ServeConfig,
    env: Environment | None = None,
    timeout: float = 20.0,
) -> ServerHandle:
    """Start a :class:`GIServer` on a background thread; returns once it
    is accepting connections (``handle.address`` is then bound)."""
    server = GIServer(config, env=env)
    ready = threading.Event()

    def runner() -> None:
        asyncio.run(server.run(ready=lambda _server: ready.set()))

    thread = threading.Thread(target=runner, name="repro-serve", daemon=True)
    thread.start()
    if not ready.wait(timeout):
        raise RuntimeError("serve daemon failed to start within the timeout")
    return ServerHandle(server, thread)
