"""Quick-Look impredicativity (after Serrano et al., ICFP 2020) — a baseline.

Quick Look is GHC's production answer to the same design problem GI
solves (shared authors, one paper generation apart): keep inference
predicative by default, but run a cheap *quick look* over each n-ary
application spine first, structurally matching the quick-lookable
arguments (variables, literals, annotated terms, and nested application
spines of those) against the instantiated parameter types.  Matches that
force an instantiation variable to a *polytype* are committed before
ordinary — predicative — unification and subsumption check the spine for
real.  A polytype commit ``κ := σ`` is taken when

* ``σ`` is not ∀-headed (the polymorphism sits under a type constructor,
  so no predicative solution exists anyway), or
* ``κ`` appears *guarded* — under at least one type constructor,
  arrows included — in the instantiated parameter/result types (the
  paper's guardedness condition, deliberately the same word the GI
  paper uses for its own occurrence condition).

Everything around the quick look is the predicative arbitrary-rank
bidirectional system of :mod:`repro.baselines.rankn` (deep
skolemisation, σ-generalisation at inference points, skolem-escape
checks), which is exactly the architecture Quick Look extends in GHC.
By construction every RankN-accepted term is accepted here with the
same type — one of the differential-fuzz implications in
:mod:`repro.conformance.oracles`.

Known reconstruction divergences are measured, not patched over: the
quick look also descends into *nested* spines (``map poly (single
id)``), and checking mode propagates the expected type into a spine's
own quick look, so e.g. ``choose [] ids`` commits ``κ := [∀a.a→a]``
while checking ``[]``.  The measured Figure-2 column lives in
``tests/test_figure2_matrix.py`` and EXPERIMENTS.md.
"""

from __future__ import annotations

from repro.core.env import Environment
from repro.core.errors import (
    GIError,
    OccursCheckError,
    SkolemEscapeError,
    TypeError_,
    UnificationError,
)
from repro.core.names import NameSupply, letters
from repro.core.sorts import Sort
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.types import (
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    contains_uvar,
    forall,
    ftv,
    fun,
    fuv,
    rename_canonical,
    strip_forall,
    subst_tvars,
)


class QuickLookError(TypeError_):
    """A Quick-Look type error."""


# UVar sorts:
#   Sort.M — ordinary unification variables (λ-binders, plain fresh
#            variables): predicative, like RankN;
#   Sort.U — *instantiation* variables of an application spine: still
#            predicative in ordinary unification, but the quick look may
#            commit them to polytypes before unification runs.


class QuickLookInferencer:
    """Bidirectional predicative inference + the quick-look spine pass.

    ``policy`` (an :class:`~repro.core.policy.InstantiationPolicy`, or
    ``None`` for the reference configuration) selects the instantiation
    discipline.  The published Quick Look sits on an *eager-deep*
    substrate; ``depth="shallow"`` stops skolemisation at top-level
    binders and ``speed="lazy"`` keeps ∀-headed spine results
    uninstantiated (GHC 9's actual configuration).
    """

    def __init__(self, env: Environment, budget=None, policy=None) -> None:
        self.env = env
        self.budget = budget
        self.policy = policy
        self._lazy = policy is not None and policy.lazy
        self._deep = policy is None or policy.deep
        self.supply = NameSupply("q")
        self.subst: dict[UVar, Type] = {}
        self.skolems: set[str] = set()

    # -- plumbing ---------------------------------------------------------

    def fresh(self, sort: Sort = Sort.M) -> UVar:
        return UVar(self.supply.fresh(), sort)

    def zonk(self, type_: Type) -> Type:
        if isinstance(type_, UVar):
            bound = self.subst.get(type_)
            return type_ if bound is None else self.zonk(bound)
        if isinstance(type_, TCon):
            return TCon(type_.name, tuple(self.zonk(a) for a in type_.args))
        if isinstance(type_, Forall):
            return Forall(type_.binders, self.zonk(type_.body), type_.context)
        return type_

    def unify(self, left: Type, right: Type, depth: int = 0) -> None:
        if self.budget is not None:
            self.budget.check_unify_depth(depth, left, right)
        left, right = self.zonk(left), self.zonk(right)
        if left == right:
            return
        if isinstance(left, UVar):
            self._bind(left, right)
            return
        if isinstance(right, UVar):
            self._bind(right, left)
            return
        if (
            isinstance(left, TCon)
            and isinstance(right, TCon)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            for left_argument, right_argument in zip(left.args, right.args):
                self.unify(left_argument, right_argument, depth + 1)
            return
        if isinstance(left, Forall) and isinstance(right, Forall):
            # Committed polytypes meet each other invariantly: equal up
            # to α-renaming (checked by unifying under shared skolems).
            if not alpha_equal(left, right):
                self._unify_forall(left, right, depth)
            return
        raise UnificationError(left, right)

    def _unify_forall(self, left: Forall, right: Forall, depth: int) -> None:
        if len(left.binders) != len(right.binders):
            raise UnificationError(left, right, "different numbers of quantifiers")
        shared = [self._fresh_skolem(name) for name in left.binders]
        left_map = {n: TVar(s) for n, s in zip(left.binders, shared)}
        right_map = {n: TVar(s) for n, s in zip(right.binders, shared)}
        self.unify(
            subst_tvars(left_map, left.body),
            subst_tvars(right_map, right.body),
            depth + 1,
        )
        for skolem in shared:
            for variable, image in list(self.subst.items()):
                if skolem in ftv(self.zonk(image)) and variable not in fuv(
                    self.zonk(left)
                ):
                    raise SkolemEscapeError(skolem, self.zonk(image))

    def _bind(self, variable: UVar, type_: Type) -> None:
        if contains_uvar(type_, variable):
            raise OccursCheckError(variable, type_)
        if _mentions_forall(type_):
            # Ordinary unification stays predicative; polytypes reach
            # instantiation variables only through quick-look commits.
            raise QuickLookError(
                f"predicativity violation: `{variable}` cannot stand for the "
                f"polymorphic type `{type_}` without a quick-look commit"
            )
        self.subst[variable] = type_

    def _fresh_skolem(self, hint: str) -> str:
        name = self.supply.fresh(hint + "_sk")
        self.skolems.add(name)
        return name

    # -- instantiation / skolemisation / subsumption -----------------------

    def instantiate(self, scheme: Type) -> Type:
        """``σ`` to ``ρ`` with ordinary (predicative) variables."""
        scheme = self.zonk(scheme)
        binders, body = strip_forall(scheme)
        if not binders:
            return scheme
        mapping = {name: self.fresh() for name in binders}
        return subst_tvars(mapping, body)

    def _instantiate_spine(self, scheme: Forall, spine_vars: set[UVar]) -> Type:
        """Instantiate with *instantiation* variables the quick look may
        commit to polytypes."""
        mapping = {name: self.fresh(Sort.U) for name in scheme.binders}
        spine_vars.update(mapping.values())
        return subst_tvars(mapping, scheme.body)

    def deep_skolemise(self, scheme: Type) -> tuple[list[str], Type]:
        scheme = self.zonk(scheme)
        binders, body = strip_forall(scheme)
        mapping = {name: TVar(self._fresh_skolem(name)) for name in binders}
        skolems = [variable.name for variable in mapping.values()]
        body = subst_tvars(mapping, body)
        if self._deep and isinstance(body, TCon) and body.name == "->" and len(body.args) == 2:
            argument, result = body.args
            inner_skolems, inner_body = self.deep_skolemise(result)
            return skolems + inner_skolems, fun(argument, inner_body)
        return skolems, body

    def subsume(
        self, offered: Type, expected: Type, local: dict[str, Type] | None = None
    ) -> None:
        """``offered ⊑ expected`` (deep-skolemise the expected side)."""
        outer = self._reachable_vars(local, offered)
        skolems, expected_rho = self.deep_skolemise(expected)
        self._subsume_rho(offered, expected_rho)
        self._check_escape(skolems, outer)

    def _subsume_rho(
        self, offered: Type, expected_rho: Type, spine_result: bool = False
    ) -> None:
        offered = self.zonk(offered)
        expected_rho = self.zonk(expected_rho)
        if isinstance(offered, Forall) and not isinstance(expected_rho, Forall):
            if (
                spine_result
                and isinstance(expected_rho, UVar)
                and expected_rho.sort is Sort.U
            ):
                # The spine's committed polytype result fills the
                # enclosing spine's instantiation variable — the
                # result-type side of the quick look.  This is what
                # types `map head (single ids)` at `[∀a.a→a]` instead
                # of instantiating `head`'s result away.  Only trusted
                # spine results flow here; generalisation artifacts
                # from checking fall through `subsume` (no flag) and
                # instantiate predicatively, keeping RankN-accepted
                # terms at their RankN types.
                if contains_uvar(offered, expected_rho):
                    raise OccursCheckError(expected_rho, offered)
                self.subst[expected_rho] = offered
                return
            self._subsume_rho(self.instantiate(offered), expected_rho, spine_result)
            return
        if (
            isinstance(offered, TCon)
            and offered.name == "->"
            and isinstance(expected_rho, TCon)
            and expected_rho.name == "->"
        ):
            self.subsume(expected_rho.args[0], offered.args[0])
            self._subsume_rho(offered.args[1], expected_rho.args[1], spine_result)
            return
        self.unify(offered, expected_rho)

    def _reachable_vars(
        self, local: dict[str, Type] | None, *types: Type
    ) -> set[UVar]:
        reachable: set[UVar] = set()
        for type_ in (local or {}).values():
            reachable.update(fuv(self.zonk(type_)))
        for type_ in types:
            reachable.update(fuv(self.zonk(type_)))
        return reachable

    def _check_escape(self, skolems: list[str], outer: set[UVar]) -> None:
        if not skolems:
            return
        for variable in outer:
            leaked = set(skolems) & ftv(self.zonk(variable))
            if leaked:
                raise SkolemEscapeError(sorted(leaked)[0], self.zonk(variable))

    # -- the quick look ----------------------------------------------------

    def _quick_type(self, term: Term, local: dict[str, Type]) -> Type | None:
        """The *rough* type of a quick-lookable argument, or ``None``.

        Quick-lookable: variables, literals, annotated terms, and
        application spines of those.  Nested spines run their own quick
        look, so commits discovered inside (``single (id :: ∀a.a→a)``
        fixing its element type) are visible to the enclosing match.
        Never raises — a shape the quick look cannot see through simply
        contributes no information.
        """
        try:
            if isinstance(term, Var):
                return self.instantiate(self._lookup(term.name, local))
            if isinstance(term, Lit):
                return term.type_
            if isinstance(term, Ann):
                return term.annotation
            if isinstance(term, App):
                return self._quick_spine(term, local)
        except GIError:
            return None
        return None

    def _quick_head_sigma(self, head: Term, local: dict[str, Type]) -> Type | None:
        if isinstance(head, Var):
            try:
                return self._lookup(head.name, local)
            except GIError:
                return None
        if isinstance(head, Ann):
            return head.annotation
        if isinstance(head, App):
            return self._quick_spine(head, local)
        return None

    def _quick_spine(self, term: App, local: dict[str, Type]) -> Type | None:
        """Quick look for a *nested* spine: match its own arguments,
        commit what is eligible, and return the rough result type."""
        current = self._quick_head_sigma(term.head, local)
        if current is None:
            return None
        spine_vars: set[UVar] = set()
        pairs: list[tuple[Term, Type]] = []
        for argument in term.args:
            current = self.zonk(current)
            if isinstance(current, Forall):
                current = self._instantiate_spine(current, spine_vars)
            if isinstance(current, TCon) and current.name == "->":
                parameter, current = current.args
            else:
                return None
            pairs.append((argument, parameter))
        quicks: list[tuple[UVar, Type]] = []
        for argument, parameter in pairs:
            quick = self._quick_type(argument, local)
            if quick is not None:
                self._quick_match(parameter, quick, spine_vars, quicks)
        self._commit_quicks(
            quicks, [parameter for _, parameter in pairs] + [current], spine_vars
        )
        return self.zonk(current)

    def _quick_match(
        self,
        spine_type: Type,
        against: Type,
        spine_vars: set[UVar],
        out: list[tuple[UVar, Type]],
    ) -> None:
        """Structurally match a spine type (containing instantiation
        variables) against an argument's rough type, collecting candidate
        bindings.  Purely informative: mismatches record nothing — the
        real check reports them later."""
        spine_type = self.zonk(spine_type)
        against = self.zonk(against)
        if isinstance(spine_type, UVar):
            if spine_type in spine_vars and not isinstance(against, UVar):
                out.append((spine_type, against))
            return
        if (
            isinstance(spine_type, TCon)
            and isinstance(against, TCon)
            and spine_type.name == against.name
            and len(spine_type.args) == len(against.args)
        ):
            for left, right in zip(spine_type.args, against.args):
                self._quick_match(left, right, spine_vars, out)
            return
        if (
            isinstance(spine_type, Forall)
            and isinstance(against, Forall)
            and len(spine_type.binders) == len(against.binders)
        ):
            shared = [TVar(self.supply.fresh(n)) for n in spine_type.binders]
            left_map = dict(zip(spine_type.binders, shared))
            right_map = dict(zip(against.binders, shared))
            self._quick_match(
                subst_tvars(left_map, spine_type.body),
                subst_tvars(right_map, against.body),
                spine_vars,
                out,
            )

    def _commit_quicks(
        self,
        quicks: list[tuple[UVar, Type]],
        spine_types: list[Type],
        spine_vars: set[UVar],
    ) -> None:
        """Commit the eligible polytype discoveries (first match wins)."""
        guarded: set[UVar] | None = None
        for variable, image in quicks:
            if self.subst.get(variable) is not None:
                continue
            image = self.zonk(image)
            if not _mentions_forall(image):
                continue  # monotype info: ordinary unification re-derives it
            if isinstance(image, Forall):
                if guarded is None:
                    guarded = self._guarded_vars(spine_types, spine_vars)
                if variable not in guarded:
                    continue  # ∀-headed and unguarded: no commit (like GI)
            if contains_uvar(image, variable):
                continue
            self.subst[variable] = image

    def _guarded_vars(
        self, spine_types: list[Type], spine_vars: set[UVar]
    ) -> set[UVar]:
        """Instantiation variables occurring under at least one type
        constructor (arrows included) in the parameter/result types."""
        guarded: set[UVar] = set()

        def go(node: Type, under_con: bool) -> None:
            if isinstance(node, UVar):
                bound = self.subst.get(node)
                if bound is not None:
                    go(bound, under_con)
                elif under_con and node in spine_vars:
                    guarded.add(node)
            elif isinstance(node, TCon):
                for argument in node.args:
                    go(argument, True)
            elif isinstance(node, Forall):
                go(node.body, under_con)

        for type_ in spine_types:
            go(type_, False)
        return guarded

    # -- inference ----------------------------------------------------------

    def infer(self, term: Term) -> Type:
        """The inferred σ-type of a term."""
        if self.budget is not None:
            self.budget.start()
        self.subst = {}
        local: dict[str, Type] = {}
        rho = self._infer_rho(term, local)
        return rename_canonical(self._generalize(local, rho))

    def accepts(self, term: Term) -> bool:
        try:
            self.infer(term)
            return True
        except GIError:
            return False

    def _generalize(self, local: dict[str, Type], rho: Type) -> Type:
        rho = self.zonk(rho)
        env_vars: set[UVar] = set()
        for type_ in local.values():
            env_vars.update(fuv(self.zonk(type_)))
        free = [v for v in _ordered_vars(rho) if v not in env_vars]
        names: list[str] = []
        used = set(ftv(rho))
        supply = letters()
        for variable in free:
            for candidate in supply:
                if candidate not in used:
                    used.add(candidate)
                    names.append(candidate)
                    self.subst[variable] = TVar(candidate)
                    break
        return forall(names, self.zonk(rho))

    def _lookup(self, name: str, local: dict[str, Type]) -> Type:
        if name in local:
            return local[name]
        return self.env.lookup(name)

    def _infer_rho(self, term: Term, local: dict[str, Type]) -> Type:
        if isinstance(term, (Var, App)):
            return self._infer_app_spine(term, local)
        if isinstance(term, Lit):
            return term.type_
        if isinstance(term, Lam):
            binder = self.fresh()
            inner = dict(local)
            inner[term.var] = binder
            body = self._infer_rho(term.body, inner)
            return fun(binder, body)
        if isinstance(term, AnnLam):
            inner = dict(local)
            inner[term.var] = term.annotation
            body = self._infer_rho(term.body, inner)
            return fun(term.annotation, body)
        if isinstance(term, Ann):
            self._check_sigma(term.expr, term.annotation, local)
            if self._lazy:
                return self.zonk(term.annotation)
            return self.instantiate(term.annotation)
        if isinstance(term, Let):
            bound = self._infer_sigma(term.bound, local)
            inner = dict(local)
            inner[term.var] = bound
            return self._infer_rho(term.body, inner)
        if isinstance(term, Case):
            return self._infer_case(term, local)
        raise TypeError(f"unknown term node: {term!r}")

    def _infer_app_spine(
        self,
        term: Term,
        local: dict[str, Type],
        expected: Type | None = None,
    ) -> Type:
        """Type one application spine: instantiate the head, quick-look
        the arguments (and the expected result type, when checking),
        commit, then check the arguments predicatively in order."""
        if isinstance(term, App):
            head, args = term.head, term.args
        else:
            head, args = term, ()
        fn_sigma = self._head_sigma(head, local)
        spine_vars: set[UVar] = set()
        params: list[Type] = []
        current = fn_sigma
        for _ in args:
            current = self.zonk(current)
            if isinstance(current, Forall):
                current = self._instantiate_spine(current, spine_vars)
            if isinstance(current, UVar):
                if current in spine_vars:
                    # Splitting an instantiation variable into an arrow
                    # yields instantiation variables: `id poly (λx.x)`
                    # needs the split parameter to take a quick-look
                    # commit to `∀a.a→a`.
                    parameter, result = self.fresh(Sort.U), self.fresh(Sort.U)
                    spine_vars.update((parameter, result))
                else:
                    parameter, result = self.fresh(), self.fresh()
                self.unify(current, fun(parameter, result))
                current = result
            elif isinstance(current, TCon) and current.name == "->":
                parameter, current = current.args
            else:
                raise QuickLookError(f"too many arguments for `{current}`")
            params.append(parameter)
        current = self.zonk(current)
        if expected is not None and isinstance(current, Forall):
            # Checking mode: the expected ρ-type takes part in the quick
            # look, so the result's own quantifiers become instantiation
            # variables too (`[] : [∀a.a→a]` commits through this).
            current = self._instantiate_spine(current, spine_vars)
        quicks: list[tuple[UVar, Type]] = []
        for argument, parameter in zip(args, params):
            quick = self._quick_type(argument, local)
            if quick is not None:
                self._quick_match(parameter, quick, spine_vars, quicks)
        if expected is not None:
            self._quick_match(current, expected, spine_vars, quicks)
        self._commit_quicks(quicks, params + [current], spine_vars)
        for argument, parameter in zip(args, params):
            self._check_arg(argument, self.zonk(parameter), local)
        current = self.zonk(current)
        if expected is not None:
            self._subsume_rho(current, expected, spine_result=True)
        elif isinstance(current, Forall) and not self._lazy:
            # No expected type to propagate the polymorphism into: the
            # ∀-headed result instantiates predicatively, exactly as
            # RankN's variable rule would (re-generalisation at the
            # nearest σ point restores the quantifiers when legitimate).
            # A lazy policy keeps the polytype instead.
            current = self.instantiate(current)
        return self.zonk(current)

    def _head_sigma(self, head: Term, local: dict[str, Type]) -> Type:
        """The head's σ-type, *uninstantiated* so its quantifiers become
        this spine's instantiation variables."""
        if isinstance(head, Var):
            return self._lookup(head.name, local)
        if isinstance(head, Ann):
            self._check_sigma(head.expr, head.annotation, local)
            return head.annotation
        return self._infer_rho(head, local)

    def _infer_sigma(self, term: Term, local: dict[str, Type]) -> Type:
        rho = self._infer_rho(term, local)
        return self._generalize(local, rho)

    def _check_arg(self, argument: Term, parameter: Type, local: dict[str, Type]) -> None:
        parameter = self.zonk(parameter)
        if isinstance(parameter, Forall):
            self._check_sigma(argument, parameter, local)
            return
        if isinstance(argument, Lam) and isinstance(parameter, TCon) and parameter.name == "->":
            inner = dict(local)
            inner[argument.var] = parameter.args[0]
            self._check_arg(argument.body, parameter.args[1], inner)
            return
        if isinstance(argument, (Var, App)):
            self._infer_app_spine(argument, local, expected=parameter)
            return
        offered = self._infer_sigma(argument, local)
        self.subsume(offered, parameter, local)

    def _check_sigma(self, term: Term, expected: Type, local: dict[str, Type]) -> None:
        outer = self._reachable_vars(local)
        skolems, rho = self.deep_skolemise(expected)
        self._check_rho(term, rho, local)
        self._check_escape(skolems, outer)
        env_free: set[str] = set()
        for type_ in local.values():
            env_free.update(ftv(self.zonk(type_)))
        leaked = set(skolems) & env_free
        if leaked:
            raise SkolemEscapeError(sorted(leaked)[0])

    def _check_rho(self, term: Term, expected_rho: Type, local: dict[str, Type]) -> None:
        expected_rho = self.zonk(expected_rho)
        if isinstance(term, Lam) and isinstance(expected_rho, TCon) and expected_rho.name == "->":
            inner = dict(local)
            inner[term.var] = expected_rho.args[0]
            self._check_rho(term.body, expected_rho.args[1], inner)
            return
        if isinstance(term, AnnLam) and isinstance(expected_rho, TCon) and expected_rho.name == "->":
            self.subsume(expected_rho.args[0], term.annotation, local)
            inner = dict(local)
            inner[term.var] = term.annotation
            self._check_rho(term.body, expected_rho.args[1], inner)
            return
        if isinstance(term, (Var, App)):
            self._infer_app_spine(term, local, expected=expected_rho)
            return
        offered = self._infer_rho(term, local)
        self._subsume_rho(self._generalize(local, offered), expected_rho)

    def _infer_case(self, term: Case, local: dict[str, Type]) -> Type:
        scrutinee = self.zonk(self._infer_rho(term.scrutinee, local))
        if isinstance(scrutinee, Forall):
            scrutinee = self.instantiate(scrutinee)
        first = self.env.lookup_datacon(term.alts[0].constructor)
        alphas = {name: self.fresh() for name in first.universals}
        self.unify(
            scrutinee, TCon(first.result_con, tuple(alphas[n] for n in first.universals))
        )
        result = self.fresh()
        for alt in term.alts:
            datacon = self.env.lookup_datacon(alt.constructor)
            if datacon.result_con != first.result_con:
                raise QuickLookError("mixed constructors in case")
            mapping: dict[str, Type] = dict(alphas)
            mapping.update(
                {name: TVar(self._fresh_skolem(name)) for name in datacon.existentials}
            )
            fields = [subst_tvars(mapping, field) for field in datacon.fields]
            inner = dict(local)
            inner.update(dict(zip(alt.binders, fields)))
            rhs = self.zonk(self._infer_rho(alt.rhs, inner))
            resolved = self.zonk(result)
            if isinstance(rhs, Forall) and not isinstance(resolved, Forall):
                # A ∀-headed branch meeting a mono result instantiates
                # (`case … of { _ -> inc ; _ -> id }` : Int → Int).
                rhs = self.instantiate(rhs)
            if (
                isinstance(resolved, UVar)
                and _mentions_forall(rhs)
                and not contains_uvar(rhs, resolved)
            ):
                # The first branch with a polytype result fixes the
                # case's σ; later branches must α-agree through unify.
                self.subst[resolved] = rhs
            else:
                self.unify(result, rhs)
        return self.zonk(result)


def _mentions_forall(type_: Type) -> bool:
    if isinstance(type_, Forall):
        return True
    if isinstance(type_, TCon):
        return any(_mentions_forall(argument) for argument in type_.args)
    return False


def _ordered_vars(type_: Type) -> list[UVar]:
    seen: list[UVar] = []

    def go(node: Type) -> None:
        if isinstance(node, UVar):
            if node not in seen:
                seen.append(node)
        elif isinstance(node, TCon):
            for argument in node.args:
                go(argument)
        elif isinstance(node, Forall):
            go(node.body)

    go(type_)
    return seen


def quicklook_infer(term: Term, env: Environment) -> Type:
    """Convenience wrapper."""
    return QuickLookInferencer(env).infer(term)
