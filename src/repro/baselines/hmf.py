"""HMF-style inference (after Leijen, ICFP 2008) — an executable baseline.

HMF is the system the paper compares against most closely (Section 6):
like GI it infers System F types with no new type-language features, but
it makes *local, eager* decisions at each application instead of deferring
them through constraints.  This implementation follows the published
algorithm's architecture:

* full System F types; unification may bind variables to polytypes;
* quantified types unify only modulo α-renaming (invariant constructors);
* λ-binders without annotations are fully monomorphic;
* function application instantiates the function type eagerly and matches
  arguments **left to right**; an argument matched against a bare
  unification variable is instantiated first (the predicative preference
  that gives ``choose id : (a → a) → a → a``);
* arguments matched against a quantified expected type are *subsumed*:
  the expected type is skolemised and the argument's generalised type must
  cover it (with a skolem-escape check — this is what rejects
  ``λxs. poly (head xs)``);
* results of applications and lambdas are generalised.

Leijen's paper also sketches an n-ary extension that postpones arguments
facing a bare variable and iterates until a round fixes no further types;
``HMFInferencer(nary=True)`` implements it (it accepts ``id : ids`` and
``revapp argST runST``, which plain left-to-right HMF does not).

Where this reconstruction is known to diverge from the published Figure 2
column is measured and documented in EXPERIMENTS.md rather than patched
over: Leijen's *minimal polymorphic weight* condition (the side condition
that rejects ``choose id auto``) is only partially reproduced, via the
rule that an inferred (generalised) quantifier is never instantiated
impredicatively — declared quantifiers from the environment may be.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.env import Environment
from repro.core.errors import (
    GIError,
    OccursCheckError,
    SkolemEscapeError,
    TypeError_,
    UnificationError,
)
from repro.core.names import NameSupply, letters
from repro.core.sorts import Sort
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.types import (
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    contains_uvar,
    forall,
    ftv,
    fun,
    fuv,
    is_fully_monomorphic,
    rename_canonical,
    strip_forall,
    subst_tvars,
)


class HMFError(TypeError_):
    """An HMF type error."""


# Unification-variable flavours, encoded in the shared UVar sort field:
#   Sort.M — a λ-binder: must stay fully monomorphic (no ∀ anywhere);
#   Sort.T — an *inferred* quantifier re-instantiated: never ∀-headed
#            (the minimal-weight approximation);
#   Sort.U — a declared quantifier's instantiation: unrestricted.


class HMFInferencer:
    """One HMF inference engine over the shared ASTs."""

    def __init__(self, env: Environment, nary: bool = False, budget=None) -> None:
        self.env = env
        self.nary = nary
        self.budget = budget
        self.supply = NameSupply("h")
        self.subst: dict[UVar, Type] = {}
        self.skolems: set[str] = set()
        # Quantifiers introduced by our own generalisation (as opposed to
        # declared in the environment or an annotation): re-instantiating
        # these must stay predicative.
        self.inferred_quantifiers: set[str] = set()

    # -- plumbing --------------------------------------------------------

    def fresh(self, sort: Sort = Sort.U) -> UVar:
        return UVar(self.supply.fresh(), sort)

    def zonk(self, type_: Type) -> Type:
        if isinstance(type_, UVar):
            bound = self.subst.get(type_)
            return type_ if bound is None else self.zonk(bound)
        if isinstance(type_, TCon):
            return TCon(type_.name, tuple(self.zonk(a) for a in type_.args))
        if isinstance(type_, Forall):
            return Forall(type_.binders, self.zonk(type_.body), type_.context)
        return type_

    # -- unification ------------------------------------------------------

    def unify(self, left: Type, right: Type, depth: int = 0) -> None:
        if self.budget is not None:
            self.budget.check_unify_depth(depth, left, right)
        left, right = self.zonk(left), self.zonk(right)
        if left == right:
            return
        if isinstance(left, UVar):
            self._bind(left, right)
            return
        if isinstance(right, UVar):
            self._bind(right, left)
            return
        if (
            isinstance(left, TCon)
            and isinstance(right, TCon)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            for left_argument, right_argument in zip(left.args, right.args):
                self.unify(left_argument, right_argument, depth + 1)
            return
        if isinstance(left, Forall) and isinstance(right, Forall):
            if not alpha_equal(left, right):
                self._unify_forall(left, right)
            return
        raise UnificationError(left, right)

    def _unify_forall(self, left: Forall, right: Forall) -> None:
        if len(left.binders) != len(right.binders):
            raise UnificationError(left, right, "different numbers of quantifiers")
        shared = [self._fresh_skolem(name) for name in left.binders]
        left_map = {n: TVar(s) for n, s in zip(left.binders, shared)}
        right_map = {n: TVar(s) for n, s in zip(right.binders, shared)}
        self.unify(subst_tvars(left_map, left.body), subst_tvars(right_map, right.body))
        # The shared skolems must not leak into the substitution images of
        # any outer variable.
        for skolem in shared:
            for variable, image in list(self.subst.items()):
                if skolem in ftv(self.zonk(image)) and variable not in fuv(
                    self.zonk(left)
                ):
                    raise SkolemEscapeError(skolem, self.zonk(image))

    def _bind(self, variable: UVar, type_: Type) -> None:
        if contains_uvar(type_, variable):
            raise OccursCheckError(variable, type_)
        if variable.sort is Sort.M and _mentions_forall(type_):
            raise HMFError(
                f"monomorphic variable `{variable}` cannot be `{type_}` "
                f"(annotate the lambda binder)"
            )
        if variable.sort is Sort.T and isinstance(type_, Forall):
            raise HMFError(
                f"ambiguous impredicative instantiation: inferred quantifier "
                f"`{variable}` would become `{type_}` (minimal instantiation "
                f"chooses the monomorphic alternative)"
            )
        self.subst[variable] = type_

    # -- instantiation / generalisation -----------------------------------

    def _fresh_skolem(self, hint: str) -> str:
        name = self.supply.fresh(hint + "_sk")
        self.skolems.add(name)
        return name

    def instantiate(self, scheme: Type, predicative: bool = False) -> Type:
        """Strip the top quantifiers with fresh variables.

        With ``predicative=True`` the fresh variables are restricted (never
        ∀-headed): this is the *minimal polymorphic weight* preference —
        an instantiation taken because nothing demanded polymorphism must
        not later be forced polymorphic (rejects ``choose id auto``).
        """
        scheme = self.zonk(scheme)
        binders, body = strip_forall(scheme)
        if not binders:
            return scheme
        mapping = {}
        arrow_vars = _vars_under_arrow(body) if predicative else set()
        for name in binders:
            if name in self.inferred_quantifiers or name in arrow_vars:
                sort = Sort.T
            else:
                sort = Sort.U
            mapping[name] = self.fresh(sort)
        return subst_tvars(mapping, body)

    def generalize(self, env_types: list[Type], type_: Type) -> Type:
        type_ = self.zonk(type_)
        env_vars: set[UVar] = set()
        for env_type in env_types:
            env_vars.update(fuv(self.zonk(env_type)))
        free = [v for v in _ordered_vars(type_) if v not in env_vars]
        names: list[str] = []
        used = set(ftv(type_))
        supply = letters()
        for variable in free:
            for candidate in supply:
                fresh_name = f"{candidate}%"  # marked as inferred
                if fresh_name not in used:
                    used.add(fresh_name)
                    names.append(fresh_name)
                    self.inferred_quantifiers.add(fresh_name)
                    self.subst[variable] = TVar(fresh_name)
                    break
        return forall(names, self.zonk(type_))

    def subsume(self, expected: Type, offered: Type) -> None:
        """``offered`` must be at least as polymorphic as ``expected``."""
        expected = self.zonk(expected)
        binders, body = strip_forall(expected)
        if binders:
            mapping = {name: TVar(self._fresh_skolem(name)) for name in binders}
            body = subst_tvars(mapping, body)
            outer_before = {
                variable: self.zonk(variable) for variable in fuv(self.zonk(offered))
            }
            self.unify(self.instantiate(offered), body)
            introduced = {
                mapped.name for mapped in mapping.values() if isinstance(mapped, TVar)
            }
            for variable in outer_before:
                if introduced & ftv(self.zonk(variable)):
                    raise SkolemEscapeError(
                        next(iter(introduced & ftv(self.zonk(variable)))),
                        self.zonk(variable),
                    )
        else:
            self.unify(self.instantiate(offered), body)

    # -- inference ----------------------------------------------------------

    def infer(self, term: Term) -> Type:
        """The HMF type of a term (generalised, canonically renamed)."""
        if self.budget is not None:
            self.budget.start()
        self.subst = {}
        local: dict[str, Type] = {}
        type_ = self._infer(term, local)
        result = self.generalize(list(local.values()), type_)
        return rename_canonical(_strip_marks(result))

    def accepts(self, term: Term) -> bool:
        try:
            self.infer(term)
            return True
        except GIError:
            return False

    def _lookup(self, name: str, local: dict[str, Type]) -> Type:
        if name in local:
            return local[name]
        return self.env.lookup(name)

    def _infer(self, term: Term, local: dict[str, Type]) -> Type:
        if isinstance(term, Var):
            return self._lookup(term.name, local)
        if isinstance(term, Lit):
            return term.type_
        if isinstance(term, App):
            return self._infer_app(term, local, expected=None)
        if isinstance(term, Lam):
            binder = self.fresh(Sort.M)
            inner = dict(local)
            inner[term.var] = binder
            body = self._infer(term.body, inner)
            body = self.instantiate(body)
            return self.generalize(list(local.values()), fun(binder, body))
        if isinstance(term, AnnLam):
            inner = dict(local)
            inner[term.var] = term.annotation
            body = self.instantiate(self._infer(term.body, inner))
            return self.generalize(list(local.values()), fun(term.annotation, body))
        if isinstance(term, Ann):
            offered = self._infer(term.expr, local)
            self.subsume(term.annotation, offered)
            return term.annotation
        if isinstance(term, Let):
            bound = self._infer(term.bound, local)
            scheme = self.generalize(list(local.values()), bound)
            inner = dict(local)
            inner[term.var] = scheme
            return self._infer(term.body, inner)
        if isinstance(term, Case):
            return self._infer_case(term, local)
        raise TypeError(f"unknown term node: {term!r}")

    def _infer_app(
        self, term: App, local: dict[str, Type], expected: Type | None = None
    ) -> Type:
        fn_type = self.instantiate(self._infer(term.head, local))
        params: list[Type] = []
        current = fn_type
        for _ in term.args:
            current = self.zonk(current)
            if isinstance(current, Forall):
                current = self.instantiate(current)
            if isinstance(current, UVar):
                parameter, result = self.fresh(), self.fresh()
                self.unify(current, fun(parameter, result))
                current = result
            elif isinstance(current, TCon) and current.name == "->":
                parameter, current = current.args
            else:
                raise HMFError(f"too many arguments for type `{current}`")
            params.append(parameter)
        if expected is not None:
            # Type propagation: the expected type fixes the result before
            # the arguments are matched, so impredicative instantiations
            # demanded by the context are available to them (map poly
            # (single id) needs this to type-check in HMF).
            inner = self.zonk(current)
            if isinstance(inner, Forall):
                inner = self.instantiate(inner)
            self.unify(inner, expected)
            current = inner
        order = list(range(len(term.args)))
        if self.nary:
            order = self._argument_order(params)
        for index in order:
            self._check_arg(term.args[index], params[index], local)
        if expected is not None:
            return self.zonk(current)
        return self.generalize(list(local.values()), self.instantiate(self.zonk(current)))

    def _argument_order(self, params: list[Type]) -> list[int]:
        """Leijen's n-ary extension: arguments facing a bare variable are
        postponed, iterating as earlier arguments fix types."""
        remaining = list(range(len(params)))
        order: list[int] = []
        while remaining:
            ready = [
                index
                for index in remaining
                if not isinstance(self.zonk(params[index]), UVar)
            ]
            chosen = ready[0] if ready else remaining[0]
            order.append(chosen)
            remaining.remove(chosen)
        return order

    def _check_arg(self, argument: Term, parameter: Type, local: dict[str, Type]) -> None:
        parameter = self.zonk(parameter)
        if (
            isinstance(argument, App)
            and not isinstance(parameter, UVar)
            and not isinstance(parameter, Forall)
        ):
            self._infer_app(argument, local, expected=parameter)
            return
        offered = self._infer(argument, local)
        offered_gen = self.generalize(
            list(local.values()), self.instantiate(offered)
        ) if not isinstance(argument, Var) else self.zonk(offered)
        if isinstance(parameter, Forall):
            self.subsume(parameter, offered_gen)
        elif isinstance(parameter, UVar):
            # Predicative preference: a bare expected variable takes the
            # *instantiated* argument type at restricted variables
            # (choose id : (a→a)→a→a, and choose id auto is rejected).
            self.unify(parameter, self.instantiate(offered_gen, predicative=True))
        else:
            self.unify(self.instantiate(offered_gen), parameter)

    def _infer_case(self, term: Case, local: dict[str, Type]) -> Type:
        scrutinee = self._infer(term.scrutinee, local)
        first = self.env.lookup_datacon(term.alts[0].constructor)
        alphas = {name: self.fresh() for name in first.universals}
        self.unify(
            self.instantiate(scrutinee),
            TCon(first.result_con, tuple(alphas[n] for n in first.universals)),
        )
        result = self.fresh()
        for alt in term.alts:
            datacon = self.env.lookup_datacon(alt.constructor)
            mapping: dict[str, Type] = dict(alphas)
            mapping.update(
                {name: TVar(self._fresh_skolem(name)) for name in datacon.existentials}
            )
            fields = [subst_tvars(mapping, field) for field in datacon.fields]
            inner = dict(local)
            inner.update(dict(zip(alt.binders, fields)))
            self.unify(result, self.instantiate(self._infer(alt.rhs, inner)))
        return self.zonk(result)


def _vars_under_arrow(type_: Type, under_arrow: bool = False) -> set[str]:
    """Variables whose nearest enclosing constructor is the function arrow.

    The minimal-instantiation restriction only bites at function-typed
    positions: predicatively instantiating ``∀a. a → a`` to ``β → β`` and
    later finding ``β := ∀c. σ`` reveals a genuine ambiguity (the argument
    could have been kept polymorphic, with a smaller polymorphic weight),
    whereas a variable under a *data* constructor — ``∀p. [p]`` becoming
    ``[γ]`` — admits no alternative shape, so a later polymorphic ``γ`` is
    forced, not guessed (``choose [] ids`` is accepted, ``choose id auto``
    is not).
    """
    result: set[str] = set()
    if isinstance(type_, TVar):
        if under_arrow:
            result.add(type_.name)
    elif isinstance(type_, TCon):
        is_fun = type_.name == "->"
        for argument in type_.args:
            result |= _vars_under_arrow(argument, is_fun)
    elif isinstance(type_, Forall):
        result |= _vars_under_arrow(type_.body, under_arrow) - set(type_.binders)
    return result


def _mentions_forall(type_: Type) -> bool:
    if isinstance(type_, Forall):
        return True
    if isinstance(type_, TCon):
        return any(_mentions_forall(argument) for argument in type_.args)
    return False


def _ordered_vars(type_: Type) -> list[UVar]:
    seen: list[UVar] = []

    def go(node: Type) -> None:
        if isinstance(node, UVar):
            if node not in seen:
                seen.append(node)
        elif isinstance(node, TCon):
            for argument in node.args:
                go(argument)
        elif isinstance(node, Forall):
            go(node.body)

    go(type_)
    return seen


def _strip_marks(type_: Type) -> Type:
    """Remove the ``%`` inferred-quantifier marks before display."""
    if isinstance(type_, TVar):
        return TVar(type_.name.rstrip("%"))
    if isinstance(type_, TCon):
        return TCon(type_.name, tuple(_strip_marks(a) for a in type_.args))
    if isinstance(type_, Forall):
        return Forall(
            tuple(name.rstrip("%") for name in type_.binders),
            _strip_marks(type_.body),
            type_.context,
        )
    return type_


def hmf_infer(term: Term, env: Environment, nary: bool = False) -> Type:
    """Convenience wrapper."""
    return HMFInferencer(env, nary=nary).infer(term)
