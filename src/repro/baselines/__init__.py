"""Executable baseline type systems for the Figure 2 comparison."""

from repro.baselines.freezeml import FreezeMLError, FreezeMLInferencer, freezeml_infer
from repro.baselines.hm import HMError, HMInferencer, hm_infer
from repro.baselines.hmf import HMFError, HMFInferencer, hmf_infer
from repro.baselines.quicklook import QuickLookError, QuickLookInferencer, quicklook_infer
from repro.baselines.rankn import RankNError, RankNInferencer, rankn_infer
from repro.baselines.registry import (
    Outcome,
    SYSTEMS,
    System,
    SystemOutcome,
    get_system,
)

__all__ = [
    "FreezeMLError", "FreezeMLInferencer", "freezeml_infer",
    "HMError", "HMInferencer", "hm_infer",
    "HMFError", "HMFInferencer", "hmf_infer",
    "QuickLookError", "QuickLookInferencer", "quicklook_infer",
    "RankNError", "RankNInferencer", "rankn_infer",
    "Outcome", "SYSTEMS", "System", "SystemOutcome", "get_system",
]
