"""Executable baseline type systems for the Figure 2 comparison."""

from repro.baselines.hm import HMError, HMInferencer, hm_infer
from repro.baselines.hmf import HMFError, HMFInferencer, hmf_infer
from repro.baselines.rankn import RankNError, RankNInferencer, rankn_infer
from repro.baselines.registry import SYSTEMS, System, get_system

__all__ = [
    "HMError", "HMInferencer", "hm_infer",
    "HMFError", "HMFInferencer", "hmf_infer",
    "RankNError", "RankNInferencer", "rankn_infer",
    "SYSTEMS", "System", "get_system",
]
