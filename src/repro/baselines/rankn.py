"""Predicative arbitrary-rank bidirectional inference.

The system of *Practical type inference for arbitrary-rank types*
(Peyton Jones, Vytiniotis, Weirich, Shields — JFP 2007), cited as [13] in
the paper and the basis of GHC's pre-Quick-Look higher-rank inference.
It is the natural "lower bound" baseline for GI: it handles higher-rank
*annotations* (``poly (λx. x)`` checks) but forbids all impredicative
instantiation — every example of Figure 2 that needs a type variable to
become a polytype is rejected.

Architecture, following the JFP paper:

* bidirectional: ``infer`` synthesises a ρ-type, ``check`` pushes an
  expected ρ-type into the term;
* ``σ``-generalisation at inference points, deep skolemisation in the
  subsumption check ``σ1 ⊑ σ2``;
* unification variables range over *monotypes only* (predicativity): the
  occurs-checked binder refuses any type containing a quantifier.
"""

from __future__ import annotations

from repro.core.env import Environment
from repro.core.errors import (
    GIError,
    OccursCheckError,
    SkolemEscapeError,
    TypeError_,
    UnificationError,
)
from repro.core.names import NameSupply, letters
from repro.core.sorts import Sort
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.types import (
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    contains_uvar,
    forall,
    ftv,
    fun,
    fuv,
    rename_canonical,
    strip_forall,
    subst_tvars,
)


class RankNError(TypeError_):
    """A predicative higher-rank type error."""


class RankNInferencer:
    """Bidirectional predicative arbitrary-rank inference.

    ``policy`` (an :class:`~repro.core.policy.InstantiationPolicy`, or
    ``None`` for the system's reference configuration) selects the
    instantiation discipline.  The JFP 2007 system is *eager-deep*:
    variables instantiate on mention and subsumption deep-skolemises.
    ``depth="shallow"`` stops skolemisation at the top-level binders
    (GHC 9's simplified subsumption); ``speed="lazy"`` keeps a
    variable's polytype at its occurrence until an elimination context
    forces instantiation (GHC 9's lazy instantiation).
    """

    def __init__(self, env: Environment, budget=None, policy=None) -> None:
        self.env = env
        self.budget = budget
        self.policy = policy
        self._lazy = policy is not None and policy.lazy
        self._deep = policy is None or policy.deep
        self.supply = NameSupply("r")
        self.subst: dict[UVar, Type] = {}
        self.skolems: set[str] = set()

    # -- plumbing ---------------------------------------------------------

    def fresh(self) -> UVar:
        return UVar(self.supply.fresh(), Sort.M)

    def zonk(self, type_: Type) -> Type:
        if isinstance(type_, UVar):
            bound = self.subst.get(type_)
            return type_ if bound is None else self.zonk(bound)
        if isinstance(type_, TCon):
            return TCon(type_.name, tuple(self.zonk(a) for a in type_.args))
        if isinstance(type_, Forall):
            return Forall(type_.binders, self.zonk(type_.body), type_.context)
        return type_

    def unify(self, left: Type, right: Type, depth: int = 0) -> None:
        if self.budget is not None:
            self.budget.check_unify_depth(depth, left, right)
        left, right = self.zonk(left), self.zonk(right)
        if left == right:
            return
        if isinstance(left, UVar):
            self._bind(left, right)
            return
        if isinstance(right, UVar):
            self._bind(right, left)
            return
        if (
            isinstance(left, TCon)
            and isinstance(right, TCon)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            for left_argument, right_argument in zip(left.args, right.args):
                self.unify(left_argument, right_argument, depth + 1)
            return
        raise UnificationError(left, right)

    def _bind(self, variable: UVar, type_: Type) -> None:
        if contains_uvar(type_, variable):
            raise OccursCheckError(variable, type_)
        if _mentions_forall(type_):
            raise RankNError(
                f"predicativity violation: `{variable}` cannot stand for the "
                f"polymorphic type `{type_}`"
            )
        self.subst[variable] = type_

    def _fresh_skolem(self, hint: str) -> str:
        name = self.supply.fresh(hint + "_sk")
        self.skolems.add(name)
        return name

    # -- instantiation / skolemisation / subsumption -----------------------

    def instantiate(self, scheme: Type) -> Type:
        """``σ`` to ``ρ`` with fresh (monotype) unification variables."""
        scheme = self.zonk(scheme)
        binders, body = strip_forall(scheme)
        if not binders:
            return scheme
        mapping = {name: self.fresh() for name in binders}
        return subst_tvars(mapping, body)

    def deep_skolemise(self, scheme: Type) -> tuple[list[str], Type]:
        """Peel quantifiers at the top — and, under a deep policy, to the
        right of arrows too."""
        scheme = self.zonk(scheme)
        binders, body = strip_forall(scheme)
        mapping = {name: TVar(self._fresh_skolem(name)) for name in binders}
        skolems = [variable.name for variable in mapping.values()]
        body = subst_tvars(mapping, body)
        if (
            self._deep
            and isinstance(body, TCon)
            and body.name == "->"
            and len(body.args) == 2
        ):
            argument, result = body.args
            inner_skolems, inner_body = self.deep_skolemise(result)
            return skolems + inner_skolems, fun(argument, inner_body)
        return skolems, body

    def subsume(
        self, offered: Type, expected: Type, local: dict[str, Type] | None = None
    ) -> None:
        """``offered ⊑ expected`` (dsk: deep-skolemise the expected side)."""
        outer = self._reachable_vars(local, offered)
        skolems, expected_rho = self.deep_skolemise(expected)
        self._subsume_rho(offered, expected_rho)
        self._check_escape(skolems, outer)

    def _subsume_rho(self, offered: Type, expected_rho: Type) -> None:
        offered = self.zonk(offered)
        expected_rho = self.zonk(expected_rho)
        if isinstance(offered, Forall):
            self._subsume_rho(self.instantiate(offered), expected_rho)
            return
        if (
            isinstance(offered, TCon)
            and offered.name == "->"
            and isinstance(expected_rho, TCon)
            and expected_rho.name == "->"
        ):
            # Contravariant in the argument, covariant in the result.
            self.subsume(expected_rho.args[0], offered.args[0])
            self._subsume_rho(offered.args[1], expected_rho.args[1])
            return
        self.unify(offered, expected_rho)

    def _reachable_vars(
        self, local: dict[str, Type] | None, *types: Type
    ) -> set[UVar]:
        """Unification variables visible outside a skolemisation scope."""
        reachable: set[UVar] = set()
        for type_ in (local or {}).values():
            reachable.update(fuv(self.zonk(type_)))
        for type_ in types:
            reachable.update(fuv(self.zonk(type_)))
        return reachable

    def _check_escape(self, skolems: list[str], outer: set[UVar]) -> None:
        """No skolem may leak into a variable visible outside its scope."""
        if not skolems:
            return
        for variable in outer:
            leaked = set(skolems) & ftv(self.zonk(variable))
            if leaked:
                raise SkolemEscapeError(sorted(leaked)[0], self.zonk(variable))

    # -- inference ----------------------------------------------------------

    def infer(self, term: Term) -> Type:
        """The inferred σ-type of a term."""
        if self.budget is not None:
            self.budget.start()
        self.subst = {}
        local: dict[str, Type] = {}
        rho = self._infer_rho(term, local)
        return rename_canonical(self._generalize(local, rho))

    def accepts(self, term: Term) -> bool:
        try:
            self.infer(term)
            return True
        except GIError:
            return False

    def _generalize(self, local: dict[str, Type], rho: Type) -> Type:
        rho = self.zonk(rho)
        env_vars: set[UVar] = set()
        for type_ in local.values():
            env_vars.update(fuv(self.zonk(type_)))
        free = [v for v in _ordered_vars(rho) if v not in env_vars]
        names: list[str] = []
        used = set(ftv(rho))
        supply = letters()
        for variable in free:
            for candidate in supply:
                if candidate not in used:
                    used.add(candidate)
                    names.append(candidate)
                    self.subst[variable] = TVar(candidate)
                    break
        return forall(names, self.zonk(rho))

    def _lookup(self, name: str, local: dict[str, Type]) -> Type:
        if name in local:
            return local[name]
        return self.env.lookup(name)

    def _infer_rho(self, term: Term, local: dict[str, Type]) -> Type:
        if isinstance(term, Var):
            if self._lazy:
                # Lazy instantiation: keep the polytype; elimination
                # contexts (application heads, case scrutinees) force it.
                return self.zonk(self._lookup(term.name, local))
            return self.instantiate(self._lookup(term.name, local))
        if isinstance(term, Lit):
            return term.type_
        if isinstance(term, App):
            fn_rho = self._infer_rho(term.head, local)
            for argument in term.args:
                fn_rho = self.zonk(fn_rho)
                if isinstance(fn_rho, Forall):
                    fn_rho = self.instantiate(fn_rho)
                if isinstance(fn_rho, UVar):
                    parameter, result = self.fresh(), self.fresh()
                    self.unify(fn_rho, fun(parameter, result))
                elif isinstance(fn_rho, TCon) and fn_rho.name == "->":
                    parameter, result = fn_rho.args
                else:
                    raise RankNError(f"too many arguments for `{fn_rho}`")
                self._check_arg(argument, parameter, local)
                fn_rho = result
            return self.zonk(fn_rho)
        if isinstance(term, Lam):
            binder = self.fresh()
            inner = dict(local)
            inner[term.var] = binder
            body = self._infer_rho(term.body, inner)
            return fun(binder, body)
        if isinstance(term, AnnLam):
            inner = dict(local)
            inner[term.var] = term.annotation
            body = self._infer_rho(term.body, inner)
            return fun(term.annotation, body)
        if isinstance(term, Ann):
            # Annotations switch to checking mode (the whole point of the
            # bidirectional system).
            self._check_sigma(term.expr, term.annotation, local)
            if self._lazy:
                return self.zonk(term.annotation)
            return self.instantiate(term.annotation)
        if isinstance(term, Let):
            bound = self._infer_sigma(term.bound, local)
            inner = dict(local)
            inner[term.var] = bound
            return self._infer_rho(term.body, inner)
        if isinstance(term, Case):
            return self._infer_case(term, local)
        raise TypeError(f"unknown term node: {term!r}")

    def _infer_sigma(self, term: Term, local: dict[str, Type]) -> Type:
        rho = self._infer_rho(term, local)
        return self._generalize(local, rho)

    def _check_arg(self, argument: Term, parameter: Type, local: dict[str, Type]) -> None:
        parameter = self.zonk(parameter)
        if isinstance(parameter, Forall):
            # Checking mode: push the polymorphic expected type inwards.
            self._check_sigma(argument, parameter, local)
            return
        if isinstance(argument, Lam) and isinstance(parameter, TCon) and parameter.name == "->":
            inner = dict(local)
            inner[argument.var] = parameter.args[0]
            self._check_arg(argument.body, parameter.args[1], inner)
            return
        offered = self._infer_sigma(argument, local)
        self.subsume(offered, parameter, local)

    def _check_sigma(self, term: Term, expected: Type, local: dict[str, Type]) -> None:
        outer = self._reachable_vars(local)
        skolems, rho = self.deep_skolemise(expected)
        self._check_rho(term, rho, local)
        self._check_escape(skolems, outer)
        # A skolem appearing rigidly in the environment types themselves
        # (not through a unification variable) also escapes.
        env_free: set[str] = set()
        for type_ in local.values():
            env_free.update(ftv(self.zonk(type_)))
        leaked = set(skolems) & env_free
        if leaked:
            raise SkolemEscapeError(sorted(leaked)[0])

    def _check_rho(self, term: Term, expected_rho: Type, local: dict[str, Type]) -> None:
        expected_rho = self.zonk(expected_rho)
        if isinstance(term, Lam) and isinstance(expected_rho, TCon) and expected_rho.name == "->":
            inner = dict(local)
            inner[term.var] = expected_rho.args[0]
            self._check_rho(term.body, expected_rho.args[1], inner)
            return
        if isinstance(term, AnnLam) and isinstance(expected_rho, TCon) and expected_rho.name == "->":
            self.subsume(expected_rho.args[0], term.annotation, local)
            inner = dict(local)
            inner[term.var] = term.annotation
            self._check_rho(term.body, expected_rho.args[1], inner)
            return
        offered = self._infer_rho(term, local)
        self._subsume_rho(self._generalize(local, offered), expected_rho)

    def _infer_case(self, term: Case, local: dict[str, Type]) -> Type:
        scrutinee = self._infer_rho(term.scrutinee, local)
        if isinstance(self.zonk(scrutinee), Forall):
            # Reachable only under a lazy policy: matching forces
            # instantiation.
            scrutinee = self.instantiate(scrutinee)
        first = self.env.lookup_datacon(term.alts[0].constructor)
        alphas = {name: self.fresh() for name in first.universals}
        self.unify(
            scrutinee, TCon(first.result_con, tuple(alphas[n] for n in first.universals))
        )
        result = self.fresh()
        for alt in term.alts:
            datacon = self.env.lookup_datacon(alt.constructor)
            mapping: dict[str, Type] = dict(alphas)
            mapping.update(
                {name: TVar(self._fresh_skolem(name)) for name in datacon.existentials}
            )
            fields = [subst_tvars(mapping, field) for field in datacon.fields]
            inner = dict(local)
            inner.update(dict(zip(alt.binders, fields)))
            rhs = self._infer_rho(alt.rhs, inner)
            if isinstance(self.zonk(rhs), Forall):
                rhs = self.instantiate(rhs)
            self.unify(result, rhs)
        return self.zonk(result)


def _mentions_forall(type_: Type) -> bool:
    if isinstance(type_, Forall):
        return True
    if isinstance(type_, TCon):
        return any(_mentions_forall(argument) for argument in type_.args)
    return False


def _ordered_vars(type_: Type) -> list[UVar]:
    seen: list[UVar] = []

    def go(node: Type) -> None:
        if isinstance(node, UVar):
            if node not in seen:
                seen.append(node)
        elif isinstance(node, TCon):
            for argument in node.args:
                go(argument)
        elif isinstance(node, Forall):
            go(node.body)

    go(type_)
    return seen


def rankn_infer(term: Term, env: Environment) -> Type:
    """Convenience wrapper."""
    return RankNInferencer(env).infer(term)
