"""FreezeML-style inference (after Emrich et al., PLDI 2020) — a baseline.

FreezeML recovers *principal types by construction* for first-class
polymorphism by making every instantiation decision syntactically
explicit: a plain variable occurrence instantiates eagerly exactly as in
ML, while a frozen occurrence ``⌈x⌉`` suppresses instantiation and hands
the polytype over verbatim.  Unification variables may be solved to
polytypes (that is how ``single ⌈id⌉ : [∀a.a→a]`` works), quantified
types unify only up to α-renaming, λ-binders stay monomorphic, and
``let`` generalises in the classic ML way.

Reconstruction notes (our term language has no ``⌈·⌉`` syntax):

* **Annotations are the freeze stand-in.**  ``(e :: σ)`` checks ``e``'s
  generalised type against ``σ`` and returns ``σ`` *without*
  instantiating it — the same "hand the polytype over verbatim" role the
  freeze marker plays in the paper.  ``single (id :: forall a. a -> a)``
  types at ``[∀a.a→a]`` exactly like ``single ⌈id⌉``.
* Because plain variables always instantiate, Figure-2 rows that need a
  marker in FreezeML (``poly id``, ``id : ids``, ``runST argST``, the D
  column…) are *rejected* here without one — measured and recorded as
  the expected FreezeML column in ``tests/test_figure2_matrix.py`` and
  EXPERIMENTS.md, with the annotated repairs accepted.
* Impredicativity still flows through unification: ``choose [] ids``
  needs no marker because the flexible variable for ``choose``'s
  quantifier is solved to ``[∀a.a→a]`` by unification, and FreezeML's
  variables range over polytypes.
"""

from __future__ import annotations

from repro.core.env import Environment
from repro.core.errors import (
    GIError,
    OccursCheckError,
    SkolemEscapeError,
    TypeError_,
    UnificationError,
)
from repro.core.names import NameSupply, letters
from repro.core.sorts import Sort
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.types import (
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    alpha_equal,
    contains_uvar,
    forall,
    ftv,
    fun,
    fuv,
    rename_canonical,
    strip_forall,
    subst_tvars,
)


class FreezeMLError(TypeError_):
    """A FreezeML type error."""


# UVar sorts:
#   Sort.M — a λ-binder: must stay fully monomorphic (no ∀ anywhere);
#   Sort.U — everything else: may be solved to a polytype (FreezeML's
#            unification variables range over System F types).


class FreezeMLInferencer:
    """Algorithm-W-shaped inference with polytype-ranging variables."""

    def __init__(self, env: Environment, budget=None) -> None:
        self.env = env
        self.budget = budget
        self.supply = NameSupply("fz")
        self.subst: dict[UVar, Type] = {}
        self.skolems: set[str] = set()

    # -- plumbing --------------------------------------------------------

    def fresh(self, sort: Sort = Sort.U) -> UVar:
        return UVar(self.supply.fresh(), sort)

    def zonk(self, type_: Type) -> Type:
        if isinstance(type_, UVar):
            bound = self.subst.get(type_)
            return type_ if bound is None else self.zonk(bound)
        if isinstance(type_, TCon):
            return TCon(type_.name, tuple(self.zonk(a) for a in type_.args))
        if isinstance(type_, Forall):
            return Forall(type_.binders, self.zonk(type_.body), type_.context)
        return type_

    # -- unification ------------------------------------------------------

    def unify(self, left: Type, right: Type, depth: int = 0) -> None:
        if self.budget is not None:
            self.budget.check_unify_depth(depth, left, right)
        left, right = self.zonk(left), self.zonk(right)
        if left == right:
            return
        if isinstance(left, UVar):
            self._bind(left, right)
            return
        if isinstance(right, UVar):
            self._bind(right, left)
            return
        if (
            isinstance(left, TCon)
            and isinstance(right, TCon)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            for left_argument, right_argument in zip(left.args, right.args):
                self.unify(left_argument, right_argument, depth + 1)
            return
        if isinstance(left, Forall) and isinstance(right, Forall):
            if not alpha_equal(left, right):
                self._unify_forall(left, right, depth)
            return
        raise UnificationError(left, right)

    def _unify_forall(self, left: Forall, right: Forall, depth: int) -> None:
        if len(left.binders) != len(right.binders):
            raise UnificationError(left, right, "different numbers of quantifiers")
        shared = [self._fresh_skolem(name) for name in left.binders]
        left_map = {n: TVar(s) for n, s in zip(left.binders, shared)}
        right_map = {n: TVar(s) for n, s in zip(right.binders, shared)}
        self.unify(
            subst_tvars(left_map, left.body),
            subst_tvars(right_map, right.body),
            depth + 1,
        )
        # The shared skolems must not leak into the substitution images of
        # any outer variable.
        for skolem in shared:
            for variable, image in list(self.subst.items()):
                if skolem in ftv(self.zonk(image)) and variable not in fuv(
                    self.zonk(left)
                ):
                    raise SkolemEscapeError(skolem, self.zonk(image))

    def _bind(self, variable: UVar, type_: Type) -> None:
        if contains_uvar(type_, variable):
            raise OccursCheckError(variable, type_)
        if _mentions_forall(type_):
            if variable.sort is Sort.M:
                raise FreezeMLError(
                    f"monomorphic λ-binder variable `{variable}` cannot be "
                    f"`{type_}` (annotate the lambda binder)"
                )
            # The restriction propagates: a flexible variable reachable
            # from a λ-binder's image is itself mono-restricted (FreezeML
            # demotes such variables; this rejects `λxs. poly (head xs)`).
            for mono, image in list(self.subst.items()):
                if mono.sort is Sort.M and variable in fuv(self.zonk(image)):
                    raise FreezeMLError(
                        f"λ-binder `{mono}` would become polymorphic through "
                        f"`{variable} := {type_}` (annotate the lambda binder)"
                    )
        self.subst[variable] = type_

    # -- instantiation / generalisation -----------------------------------

    def _fresh_skolem(self, hint: str) -> str:
        name = self.supply.fresh(hint + "_sk")
        self.skolems.add(name)
        return name

    def instantiate(self, scheme: Type) -> Type:
        """ML-style eager instantiation of the top quantifiers."""
        scheme = self.zonk(scheme)
        binders, body = strip_forall(scheme)
        if not binders:
            return scheme
        mapping = {name: self.fresh() for name in binders}
        return subst_tvars(mapping, body)

    def generalize(self, env_types: list[Type], type_: Type) -> Type:
        type_ = self.zonk(type_)
        env_vars: set[UVar] = set()
        for env_type in env_types:
            env_vars.update(fuv(self.zonk(env_type)))
        free = [v for v in _ordered_vars(type_) if v not in env_vars]
        names: list[str] = []
        used = set(ftv(type_))
        supply = letters()
        for variable in free:
            for candidate in supply:
                if candidate not in used:
                    used.add(candidate)
                    names.append(candidate)
                    self.subst[variable] = TVar(candidate)
                    break
        return forall(names, self.zonk(type_))

    def subsume(self, expected: Type, offered: Type) -> None:
        """``offered`` must instantiate to ``expected`` (σ ⊑ check for
        the annotation rule; FreezeML instance is top-level only)."""
        expected = self.zonk(expected)
        binders, body = strip_forall(expected)
        if binders:
            mapping = {name: TVar(self._fresh_skolem(name)) for name in binders}
            body = subst_tvars(mapping, body)
            outer_before = list(fuv(self.zonk(offered)))
            self.unify(self.instantiate(offered), body)
            introduced = {
                mapped.name for mapped in mapping.values() if isinstance(mapped, TVar)
            }
            for variable in outer_before:
                leaked = introduced & ftv(self.zonk(variable))
                if leaked:
                    raise SkolemEscapeError(sorted(leaked)[0], self.zonk(variable))
        else:
            self.unify(self.instantiate(offered), body)

    # -- inference ----------------------------------------------------------

    def infer(self, term: Term) -> Type:
        """The FreezeML type of a term (generalised, canonically renamed)."""
        if self.budget is not None:
            self.budget.start()
        self.subst = {}
        local: dict[str, Type] = {}
        type_ = self._infer(term, local)
        return rename_canonical(self.generalize(list(local.values()), type_))

    def accepts(self, term: Term) -> bool:
        try:
            self.infer(term)
            return True
        except GIError:
            return False

    def _lookup(self, name: str, local: dict[str, Type]) -> Type:
        if name in local:
            return local[name]
        return self.env.lookup(name)

    def _infer(self, term: Term, local: dict[str, Type]) -> Type:
        if isinstance(term, Var):
            # A plain variable occurrence instantiates eagerly (ML-style);
            # freezing is expressed by annotating the occurrence instead.
            return self.instantiate(self._lookup(term.name, local))
        if isinstance(term, Lit):
            return term.type_
        if isinstance(term, App):
            result = self._infer(term.head, local)
            for argument in term.args:
                result = self.zonk(result)
                if isinstance(result, Forall):
                    result = self.instantiate(result)
                arg_type = self._infer(argument, local)
                fresh = self.fresh()
                self.unify(result, fun(arg_type, fresh))
                result = fresh
            return self.zonk(result)
        if isinstance(term, Lam):
            binder = self.fresh(Sort.M)
            inner = dict(local)
            inner[term.var] = binder
            body = self._infer(term.body, inner)
            return fun(binder, body)
        if isinstance(term, AnnLam):
            inner = dict(local)
            inner[term.var] = term.annotation
            body = self._infer(term.body, inner)
            return fun(term.annotation, body)
        if isinstance(term, Ann):
            # The freeze marker stand-in: the expression's *generalised*
            # (principal) type must instantiate to the signature, and the
            # signature is returned verbatim — no eager instantiation.
            offered = self._infer(term.expr, local)
            offered_sigma = self.generalize(list(local.values()), offered)
            self.subsume(term.annotation, offered_sigma)
            return term.annotation
        if isinstance(term, Let):
            # Classic ML let-generalisation (unlike GI's §3.5 `let`).
            bound = self._infer(term.bound, local)
            scheme = self.generalize(list(local.values()), bound)
            inner = dict(local)
            inner[term.var] = scheme
            return self._infer(term.body, inner)
        if isinstance(term, Case):
            return self._infer_case(term, local)
        raise TypeError(f"unknown term node: {term!r}")

    def _infer_case(self, term: Case, local: dict[str, Type]) -> Type:
        scrutinee = self._infer(term.scrutinee, local)
        first = self.env.lookup_datacon(term.alts[0].constructor)
        alphas = {name: self.fresh() for name in first.universals}
        scrutinee = self.zonk(scrutinee)
        if isinstance(scrutinee, Forall):
            scrutinee = self.instantiate(scrutinee)
        self.unify(
            scrutinee,
            TCon(first.result_con, tuple(alphas[n] for n in first.universals)),
        )
        result = self.fresh()
        for alt in term.alts:
            datacon = self.env.lookup_datacon(alt.constructor)
            if datacon.result_con != first.result_con:
                raise FreezeMLError("mixed constructors in case")
            mapping: dict[str, Type] = dict(alphas)
            mapping.update(
                {name: TVar(self._fresh_skolem(name)) for name in datacon.existentials}
            )
            fields = [subst_tvars(mapping, field) for field in datacon.fields]
            inner = dict(local)
            inner.update(dict(zip(alt.binders, fields)))
            self.unify(result, self._infer(alt.rhs, inner))
        return self.zonk(result)


def _mentions_forall(type_: Type) -> bool:
    if isinstance(type_, Forall):
        return True
    if isinstance(type_, TCon):
        return any(_mentions_forall(argument) for argument in type_.args)
    return False


def _ordered_vars(type_: Type) -> list[UVar]:
    seen: list[UVar] = []

    def go(node: Type) -> None:
        if isinstance(node, UVar):
            if node not in seen:
                seen.append(node)
        elif isinstance(node, TCon):
            for argument in node.args:
                go(argument)
        elif isinstance(node, Forall):
            go(node.body)

    go(type_)
    return seen


def freezeml_infer(term: Term, env: Environment) -> Type:
    """Convenience wrapper."""
    return FreezeMLInferencer(env).infer(term)
