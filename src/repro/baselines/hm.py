"""Hindley–Milner rank-1 inference (Algorithm W).

The predicative baseline used by Theorem 3.1 (compatibility with rank-1
polymorphism): every expression this system accepts, GI accepts with the
same type.  The implementation is deliberately classic — monotypes plus
top-level ``∀`` schemes, let-generalisation, sound occurs-checked
unification — and completely independent of the GI machinery.
"""

from __future__ import annotations

from repro.core.env import Environment
from repro.core.errors import (
    GIError,
    OccursCheckError,
    ScopeError,
    TypeError_,
    UnificationError,
)
from repro.core.names import NameSupply, letters
from repro.core.sorts import Sort
from repro.core.terms import (
    Ann,
    AnnLam,
    App,
    Case,
    Lam,
    Let,
    Lit,
    Term,
    Var,
)
from repro.core.types import (
    Forall,
    TCon,
    TVar,
    Type,
    UVar,
    contains_uvar,
    forall,
    ftv,
    fun,
    fuv,
    is_fully_monomorphic,
    rename_canonical,
    strip_forall,
    subst_tvars,
)


class HMError(TypeError_):
    """A rank-1 type error."""


class HMInferencer:
    """Algorithm W over the shared term/type ASTs.

    Environment entries must be rank-1 (``∀ā.τ``); looking up a binding
    with nested polymorphism raises, keeping the baseline honest about its
    own expressiveness.
    """

    def __init__(self, env: Environment, budget=None) -> None:
        self.env = env
        self.budget = budget
        self.supply = NameSupply("w")
        self.subst: dict[UVar, Type] = {}

    # -- plumbing --------------------------------------------------------

    def fresh(self) -> UVar:
        return UVar(self.supply.fresh(), Sort.M)

    def zonk(self, type_: Type) -> Type:
        if isinstance(type_, UVar):
            bound = self.subst.get(type_)
            return type_ if bound is None else self.zonk(bound)
        if isinstance(type_, TCon):
            return TCon(type_.name, tuple(self.zonk(a) for a in type_.args))
        if isinstance(type_, Forall):
            return Forall(type_.binders, self.zonk(type_.body), type_.context)
        return type_

    def unify(self, left: Type, right: Type, depth: int = 0) -> None:
        if self.budget is not None:
            self.budget.check_unify_depth(depth, left, right)
        left, right = self.zonk(left), self.zonk(right)
        if left == right:
            return
        if isinstance(left, UVar):
            if contains_uvar(right, left):
                raise OccursCheckError(left, right)
            self.subst[left] = right
            return
        if isinstance(right, UVar):
            self.unify(right, left, depth)
            return
        if (
            isinstance(left, TCon)
            and isinstance(right, TCon)
            and left.name == right.name
            and len(left.args) == len(right.args)
        ):
            for left_argument, right_argument in zip(left.args, right.args):
                self.unify(left_argument, right_argument, depth + 1)
            return
        raise UnificationError(left, right)

    def instantiate(self, scheme: Type) -> Type:
        binders, body = strip_forall(scheme)
        if isinstance(scheme, Forall) and scheme.context:
            raise HMError("class contexts are outside the HM baseline")
        if not is_fully_monomorphic(body):
            raise HMError(
                f"environment type `{scheme}` is not rank-1; outside the "
                f"Hindley-Milner fragment"
            )
        mapping = {name: self.fresh() for name in binders}
        return subst_tvars(mapping, body)

    def generalize(self, env_types: list[Type], type_: Type) -> Type:
        type_ = self.zonk(type_)
        env_vars: set[UVar] = set()
        for env_type in env_types:
            env_vars.update(fuv(self.zonk(env_type)))
        free = [variable for variable in _ordered_vars(type_) if variable not in env_vars]
        names = []
        used = ftv(type_)
        supply = letters()
        for variable in free:
            for candidate in supply:
                if candidate not in used:
                    used.add(candidate)
                    names.append(candidate)
                    self.subst[variable] = TVar(candidate)
                    break
        return forall(names, self.zonk(type_))

    # -- inference --------------------------------------------------------

    def infer(self, term: Term) -> Type:
        """The principal rank-1 type of a term (generalised)."""
        if self.budget is not None:
            self.budget.start()
        self.subst = {}
        local: dict[str, Type] = {}
        type_ = self._infer(term, local)
        return rename_canonical(self.generalize(list(local.values()), type_))

    def accepts(self, term: Term) -> bool:
        try:
            self.infer(term)
            return True
        except GIError:
            return False

    def _lookup(self, name: str, local: dict[str, Type]) -> Type:
        if name in local:
            return local[name]
        return self.env.lookup(name)

    def _infer(self, term: Term, local: dict[str, Type]) -> Type:
        if isinstance(term, Var):
            return self.instantiate(self._lookup(term.name, local))
        if isinstance(term, Lit):
            return term.type_
        if isinstance(term, App):
            result = self._infer(term.head, local)
            for argument in term.args:
                arg_type = self._infer(argument, local)
                fresh = self.fresh()
                self.unify(result, fun(arg_type, fresh))
                result = fresh
            return result
        if isinstance(term, Lam):
            binder = self.fresh()
            inner = dict(local)
            inner[term.var] = binder
            body = self._infer(term.body, inner)
            return fun(binder, body)
        if isinstance(term, AnnLam):
            if not is_fully_monomorphic(term.annotation):
                raise HMError("polymorphic lambda annotations are outside HM")
            inner = dict(local)
            inner[term.var] = term.annotation
            body = self._infer(term.body, inner)
            return fun(term.annotation, body)
        if isinstance(term, Ann):
            inferred = self._infer(term.expr, local)
            binders, body = strip_forall(term.annotation)
            if not is_fully_monomorphic(body):
                raise HMError("higher-rank annotations are outside HM")
            # Rank-1 signatures are checked by instantiating the signature
            # with fresh *rigid* variables and unifying; the rigids must
            # not leak into the environment.
            mapping = {name: TVar(self.supply.fresh(name + "_rigid")) for name in binders}
            rigids = {variable.name for variable in mapping.values()}
            self.unify(inferred, subst_tvars(mapping, body))
            for env_type in local.values():
                if rigids & ftv(self.zonk(env_type)):
                    raise HMError("signature variable would escape its scope")
            # The expression now has the declared (rank-1) scheme; uses of
            # it instantiate freshly.
            return self.instantiate(term.annotation)
        if isinstance(term, Let):
            bound = self._infer(term.bound, local)
            env_types = list(local.values())
            scheme = self.generalize(env_types, bound)
            inner = dict(local)
            inner[term.var] = scheme
            return self._infer(term.body, inner)
        if isinstance(term, Case):
            return self._infer_case(term, local)
        raise TypeError(f"unknown term node: {term!r}")

    def _infer_case(self, term: Case, local: dict[str, Type]) -> Type:
        scrutinee = self._infer(term.scrutinee, local)
        try:
            first = self.env.lookup_datacon(term.alts[0].constructor)
        except ScopeError:
            raise
        if first.existentials:
            raise HMError("existential data constructors are outside HM")
        alphas = {name: self.fresh() for name in first.universals}
        self.unify(
            scrutinee, TCon(first.result_con, tuple(alphas[n] for n in first.universals))
        )
        result = self.fresh()
        for alt in term.alts:
            datacon = self.env.lookup_datacon(alt.constructor)
            if datacon.result_con != first.result_con:
                raise HMError("mixed constructors in case")
            fields = [subst_tvars(alphas, field) for field in datacon.fields]
            if any(not is_fully_monomorphic(self.zonk(field)) for field in fields):
                raise HMError("polymorphic fields are outside HM")
            inner = dict(local)
            inner.update(dict(zip(alt.binders, fields)))
            self.unify(result, self._infer(alt.rhs, inner))
        return result


def _ordered_vars(type_: Type) -> list[UVar]:
    seen: list[UVar] = []

    def go(node: Type) -> None:
        if isinstance(node, UVar):
            if node not in seen:
                seen.append(node)
        elif isinstance(node, TCon):
            for argument in node.args:
                go(argument)
        elif isinstance(node, Forall):
            go(node.body)

    go(type_)
    return seen


def hm_infer(term: Term, env: Environment) -> Type:
    """Convenience wrapper."""
    return HMInferencer(env).infer(term)
