"""A uniform interface over every executable type system in the repo.

Each :class:`System` wraps one inferencer behind the same three calls:

* :meth:`System.run` — the full story: a :class:`SystemOutcome` that
  keeps *acceptance*, *rejection*, and *unavailability* apart.  A budget
  blowup or an internal error is **not** a rejection; differential
  oracles that treated it as one would report every deep term as a
  cross-backend disagreement.
* :meth:`System.accepts` / :meth:`System.try_infer` — the historical
  boolean/optional views, now defined in terms of :meth:`run` (an
  unavailable outcome answers ``False`` / ``None``).

Construction goes through a factory so budgets thread uniformly:
``system.make(env, budget)`` returns a fresh single-use inference
callable.  Every backend re-arms the budget per ``infer`` call, so one
budget can be shared sequentially across the whole matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Callable

from repro.core.env import Environment
from repro.core.errors import BudgetExceededError, GIError, InternalError
from repro.core.infer import Inferencer, InferOptions
from repro.core.terms import Term
from repro.core.types import Type
from repro.baselines.freezeml import FreezeMLInferencer
from repro.baselines.hm import HMInferencer
from repro.baselines.hmf import HMFInferencer
from repro.baselines.quicklook import QuickLookInferencer
from repro.baselines.rankn import RankNInferencer


class Outcome(str, Enum):
    """What a run of one system on one term established."""

    ACCEPT = "accept"
    REJECT = "reject"
    UNAVAILABLE = "unavailable"


@dataclass(frozen=True)
class SystemOutcome:
    """The three-valued result of running a system on a term.

    ``UNAVAILABLE`` means the run established *nothing* about the term:
    the budget ran out, the recursion limit tripped, or the backend
    crashed (``crashed=True`` — an :class:`InternalError` or a foreign
    exception).  Oracles must treat unavailable outcomes as vacuous.
    """

    status: Outcome
    type_: Type | None = None
    error: str | None = None
    detail: str | None = None
    crashed: bool = False

    @property
    def accepted(self) -> bool:
        return self.status is Outcome.ACCEPT

    @property
    def rejected(self) -> bool:
        return self.status is Outcome.REJECT

    @property
    def available(self) -> bool:
        return self.status is not Outcome.UNAVAILABLE


@dataclass(frozen=True)
class System:
    """One executable type system: a name and an inferencer factory.

    ``policy`` (an :class:`~repro.core.policy.InstantiationPolicy`, or
    ``None``) selects an instantiation discipline for the backends that
    have a meaningful eager/lazy × deep/shallow axis (GI, RankN,
    QuickLook).  ``None`` is each system's own *reference*
    configuration — eager-shallow for GI, eager-deep for the
    bidirectional systems — so the differential oracles keep comparing
    the published systems unless a policy is explicitly requested.
    Systems without a policy axis ignore the argument.
    """

    name: str
    description: str
    make: Callable[..., Callable[[Term], Type]]

    def infer(self, term: Term, env: Environment) -> Type:
        """Infer unbudgeted; raises :class:`GIError` on failure."""
        return self.make(env, None)(term)

    def run(self, term: Term, env: Environment, budget=None, policy=None) -> SystemOutcome:
        """Run with crash containment and the accept/reject/unavailable
        distinction differential oracles need."""
        try:
            # Old-style factories take (env, budget); the keyword is only
            # supplied when a non-reference policy is actually requested.
            if policy is None:
                factory = self.make(env, budget)
            else:
                factory = self.make(env, budget, policy=policy)
            type_ = factory(term)
        except BudgetExceededError as error:
            return SystemOutcome(
                Outcome.UNAVAILABLE,
                error=type(error).__name__,
                detail=str(error),
            )
        except InternalError as error:
            return SystemOutcome(
                Outcome.UNAVAILABLE,
                error=type(error).__name__,
                detail=str(error),
                crashed=True,
            )
        except GIError as error:
            return SystemOutcome(
                Outcome.REJECT, error=type(error).__name__, detail=str(error)
            )
        except RecursionError as error:
            return SystemOutcome(
                Outcome.UNAVAILABLE, error="RecursionError", detail=str(error)
            )
        except Exception as error:  # noqa: BLE001 — containment boundary
            return SystemOutcome(
                Outcome.UNAVAILABLE,
                error=type(error).__name__,
                detail=str(error),
                crashed=True,
            )
        return SystemOutcome(Outcome.ACCEPT, type_=type_)

    def accepts(self, term: Term, env: Environment) -> bool:
        return self.run(term, env).accepted

    def try_infer(self, term: Term, env: Environment) -> Type | None:
        return self.run(term, env).type_


def _gi(env: Environment, budget, policy=None) -> Callable[[Term], Type]:
    options = InferOptions(policy=policy) if policy is not None else None
    inferencer = Inferencer(env, options=options, budget=budget)
    return lambda term: inferencer.infer(term).type_


SYSTEMS: dict[str, System] = {
    "GI": System(
        "GI",
        "Guarded impredicativity (this paper)",
        _gi,
    ),
    "HMF": System(
        "HMF",
        "HMF, plain left-to-right (Leijen 2008)",
        lambda env, budget, policy=None: HMFInferencer(env, budget=budget).infer,
    ),
    "HMF-N": System(
        "HMF-N",
        "HMF with the n-ary postponed-argument extension",
        lambda env, budget, policy=None: HMFInferencer(
            env, nary=True, budget=budget
        ).infer,
    ),
    "HM": System(
        "HM",
        "Hindley-Milner rank-1 (Algorithm W)",
        lambda env, budget, policy=None: HMInferencer(env, budget=budget).infer,
    ),
    "RankN": System(
        "RankN",
        "Predicative arbitrary-rank bidirectional (JFP 2007)",
        lambda env, budget, policy=None: RankNInferencer(
            env, budget=budget, policy=policy
        ).infer,
    ),
    "FreezeML": System(
        "FreezeML",
        "FreezeML: ML with explicit freeze via annotation (PLDI 2020)",
        lambda env, budget, policy=None: FreezeMLInferencer(env, budget=budget).infer,
    ),
    "QuickLook": System(
        "QuickLook",
        "Quick Look impredicativity over RankN (ICFP 2020)",
        lambda env, budget, policy=None: QuickLookInferencer(
            env, budget=budget, policy=policy
        ).infer,
    ),
}

POLICY_SYSTEMS: tuple[str, ...] = ("GI", "RankN", "QuickLook")
"""The systems with a meaningful instantiation-policy axis."""


def get_system(name: str) -> System:
    return SYSTEMS[name]
