"""A uniform interface over every executable type system in the repo."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.core.env import Environment
from repro.core.errors import GIError
from repro.core.infer import Inferencer
from repro.core.terms import Term
from repro.core.types import Type
from repro.baselines.hm import HMInferencer
from repro.baselines.hmf import HMFInferencer
from repro.baselines.rankn import RankNInferencer


@dataclass(frozen=True)
class System:
    """One executable type system: a name and an inference function."""

    name: str
    description: str
    infer: Callable[[Term, Environment], Type]

    def accepts(self, term: Term, env: Environment) -> bool:
        try:
            self.infer(term, env)
            return True
        except GIError:
            return False

    def try_infer(self, term: Term, env: Environment) -> Type | None:
        try:
            return self.infer(term, env)
        except GIError:
            return None


SYSTEMS: dict[str, System] = {
    "GI": System(
        "GI",
        "Guarded impredicativity (this paper)",
        lambda term, env: Inferencer(env).infer(term).type_,
    ),
    "HMF": System(
        "HMF",
        "HMF, plain left-to-right (Leijen 2008)",
        lambda term, env: HMFInferencer(env).infer(term),
    ),
    "HMF-N": System(
        "HMF-N",
        "HMF with the n-ary postponed-argument extension",
        lambda term, env: HMFInferencer(env, nary=True).infer(term),
    ),
    "HM": System(
        "HM",
        "Hindley-Milner rank-1 (Algorithm W)",
        lambda term, env: HMInferencer(env).infer(term),
    ),
    "RankN": System(
        "RankN",
        "Predicative arbitrary-rank bidirectional (JFP 2007)",
        lambda term, env: RankNInferencer(env).infer(term),
    ),
}


def get_system(name: str) -> System:
    return SYSTEMS[name]
