"""Type classes (Appendix B): class tables, instances, qualified types."""

from repro.typeclasses.classes import ClassTable, standard_instances

__all__ = ["ClassTable", "standard_instances"]
