"""Type classes for GI — the Appendix B extension, public API.

The heavy lifting lives in the constraint solver
(:mod:`repro.core.solver`): class constraints are *simple constraints*
``Q`` carried in type contexts (``∀ā. Q ⇒ µ``, :class:`repro.core.types.
Pred`), emitted as wanted :class:`repro.core.constraints.ClassC`
constraints at instantiation sites, discharged against local givens
(implication constraints, rule interact/dupl of Figure 14) or the
instance table, and quantified into inferred types when residual.

This module provides the user-facing vocabulary: declaring classes and
instances with surface-syntax types, and a standard instance set for the
built-in types (``Eq``, ``Ord``, ``Show`` over Int/Bool/Char, lists and
pairs).
"""

from __future__ import annotations

from repro.core.constraints import ClassC
from repro.core.solver import InstanceEnv
from repro.core.types import Pred, TVar, Type
from repro.syntax.parser import parse_type


class ClassTable:
    """A friendlier wrapper around :class:`InstanceEnv`.

    Example::

        table = ClassTable()
        table.declare("Eq")
        table.instance("Eq Int")
        table.instance("Eq [a]", given=["Eq a"])
    """

    def __init__(self) -> None:
        self.instances = InstanceEnv()
        self._classes: dict[str, int] = {}

    def declare(self, name: str, arity: int = 1) -> "ClassTable":
        """Declare a class (``arity`` type parameters)."""
        self._classes[name] = arity
        self.instances.declare_class(name, arity)
        return self

    def instance(self, head: str, given: list[str] | None = None) -> "ClassTable":
        """Register an instance, e.g. ``instance("Eq [a]", given=["Eq a"])``.

        Lower-case type variables in the head are implicitly quantified.
        """
        head_pred = _parse_predicate(head)
        context = tuple(_parse_predicate(g) for g in (given or []))
        variables = set()
        for argument in head_pred.args:
            variables |= _type_variables(argument)
        self.instances.add_instance(
            ClassC(head_pred.class_name, head_pred.args),
            tuple(ClassC(p.class_name, p.args) for p in context),
            tuple(sorted(variables)),
        )
        return self

    def env(self) -> InstanceEnv:
        """The instance environment to hand to an :class:`Inferencer`."""
        return self.instances


def _parse_predicate(source: str) -> Pred:
    """Parse ``"Eq [a]"`` as a predicate by piggybacking on the type
    parser (a predicate is syntactically a constructor application)."""
    type_ = parse_type(source)
    from repro.core.types import TCon

    if not isinstance(type_, TCon) or not type_.args:
        raise ValueError(f"not a class predicate: {source!r}")
    return Pred(type_.name, type_.args)


def _type_variables(type_: Type) -> set[str]:
    from repro.core.types import ftv

    return ftv(type_)


def standard_instances() -> InstanceEnv:
    """``Eq``/``Ord``/``Show`` over the built-in types, lists and pairs."""
    table = ClassTable()
    table.declare("Eq").declare("Ord").declare("Show")
    for ground in ("Int", "Bool", "Char", "String"):
        table.instance(f"Eq {ground}")
        table.instance(f"Ord {ground}")
        table.instance(f"Show {ground}")
    for klass in ("Eq", "Ord", "Show"):
        table.instance(f"{klass} [a]", given=[f"{klass} a"])
        table.instance(f"{klass} (a, b)", given=[f"{klass} a", f"{klass} b"])
    return table.env()
